package serve_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"feasim/internal/peer"
	"feasim/internal/serve"
	"feasim/internal/solve"
)

// clusterNode is one member of an in-process test cluster: a real listener
// (the URL must be known before serve.New, so httptest's late-bound address
// doesn't fit), a counting solver, and the node's peer view.
type clusterNode struct {
	url     string
	ln      net.Listener
	srv     *serve.Server
	solver  *gatedSolver
	cluster *peer.Cluster
}

func (n *clusterNode) post(t *testing.T, path, body string) (int, map[string]any) {
	t.Helper()
	return post(t, n.url+path, body)
}

// solves reports the node's backend execution count.
func (n *clusterNode) solves() int64 { return n.solver.calls.Load() }

// clusterOpt lets a test adjust one node's peer and serve configs (chaos
// transports, hedge delays, shed mode, ...) before the node starts.
type clusterOpt func(i int, pc *peer.Config, sc *serve.Config)

// newTestCluster spins up n serve nodes on loopback listeners, each with its
// own gated counting solver (backend "gated" — stochastic-keyed, so routing
// uses the full envelope) and a peer view of the others. Probing is fast so
// health transitions settle within test timescales.
func newTestCluster(t *testing.T, n int, opts ...clusterOpt) []*clusterNode {
	t.Helper()
	nodes := newTestClusterNoWait(t, n, opts...)
	waitAllHealthy(t, nodes)
	return nodes
}

// newTestClusterNoWait is newTestCluster without the initial health settle —
// for chaos tests whose injected faults mean the ring never fully settles.
func newTestClusterNoWait(t *testing.T, n int, opts ...clusterOpt) []*clusterNode {
	t.Helper()
	nodes := make([]*clusterNode, n)
	urls := make([]string, n)
	for i := range nodes {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = &clusterNode{ln: ln, url: "http://" + ln.Addr().String()}
		urls[i] = nodes[i].url
	}
	for i, node := range nodes {
		var others []string
		for j, u := range urls {
			if j != i {
				others = append(others, u)
			}
		}
		pc := peer.Config{
			Self:          node.url,
			Peers:         others,
			ProbeInterval: 10 * time.Millisecond,
			ProbeTimeout:  time.Second,
			FailAfter:     2,
		}
		node.solver = &gatedSolver{name: "gated"}
		sc := serve.Config{
			Solvers:        map[string]solve.Solver{"gated": node.solver},
			DefaultBackend: "gated",
		}
		for _, opt := range opts {
			opt(i, &pc, &sc)
		}
		cl, err := peer.New(pc)
		if err != nil {
			t.Fatal(err)
		}
		node.cluster = cl
		sc.Cluster = cl
		srv, err := serve.New(sc)
		if err != nil {
			t.Fatal(err)
		}
		node.srv = srv
		go srv.Serve(node.ln)
	}
	t.Cleanup(func() {
		srvs := make([]*serve.Server, len(nodes))
		for i, node := range nodes {
			srvs[i] = node.srv
		}
		shutdownServers(t, srvs...)
	})
	return nodes
}

// waitAllHealthy blocks until every node sees every peer healthy, so tests
// start from a settled ring instead of racing the first probe round.
func waitAllHealthy(t *testing.T, nodes []*clusterNode) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		settled := true
		for _, node := range nodes {
			for _, other := range nodes {
				if other != node && !node.cluster.Healthy(other.url) {
					settled = false
				}
			}
		}
		if settled {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("cluster never settled healthy")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// homeOf returns the index of the node that homes the given envelope on the
// "gated" backend, and a non-home node index.
func homeOf(t *testing.T, nodes []*clusterNode, envelope string) (home, other int) {
	t.Helper()
	q, err := solve.ParseQuery([]byte(envelope))
	if err != nil {
		t.Fatal(err)
	}
	h, ok := solve.RouteHash("gated", q)
	if !ok {
		t.Fatal("envelope must be routable")
	}
	homeURL, _ := nodes[0].cluster.Home(h)
	home, other = -1, -1
	for i, node := range nodes {
		if node.url == homeURL {
			home = i
		} else if other < 0 {
			other = i
		}
	}
	if home < 0 || other < 0 {
		t.Fatalf("home %s not among nodes", homeURL)
	}
	return home, other
}

// fleetSolves sums backend executions across the cluster.
func fleetSolves(nodes []*clusterNode) int64 {
	var sum int64
	for _, node := range nodes {
		sum += node.solves()
	}
	return sum
}

// TestClusterSingleSolveFleetwide is the acceptance shape the ROADMAP pins:
// identical envelopes hitting different nodes execute exactly one solve
// fleet-wide — the home's cache and single-flight absorb everything.
func TestClusterSingleSolveFleetwide(t *testing.T) {
	nodes := newTestCluster(t, 3)
	const n = 8
	var wg sync.WaitGroup
	statuses := make([]int, n)
	payloads := make([]map[string]any, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], payloads[i] = nodes[i%3].post(t, "/v1/query", thresholdEnvelope)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d: status %d (%v)", i, statuses[i], payloads[i])
		}
		ans, _ := payloads[i]["answer"].(map[string]any)
		if ans["min_ratio"] != float64(7) {
			t.Errorf("request %d: answer %v", i, payloads[i]["answer"])
		}
	}
	if got := fleetSolves(nodes); got != 1 {
		t.Fatalf("%d solver calls fleet-wide for %d identical envelopes, want exactly 1", got, n)
	}
	home, _ := homeOf(t, nodes, thresholdEnvelope)
	if nodes[home].solves() != 1 {
		t.Errorf("the single solve should have run on the home node")
	}
}

// TestClusterHomeDownFallback: killing the home node must not lose answers —
// non-home nodes fall back to solving locally, count the fallback, and serve
// repeats from the adopted local entry.
func TestClusterHomeDownFallback(t *testing.T) {
	nodes := newTestCluster(t, 3)
	home, other := homeOf(t, nodes, thresholdEnvelope)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := nodes[home].srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()

	// Every surviving node still answers correctly, healthy-home belief or
	// not: a refused forward falls back to a local solve in-line.
	for i, node := range nodes {
		if i == home {
			continue
		}
		status, payload := node.post(t, "/v1/query", thresholdEnvelope)
		if status != http.StatusOK {
			t.Fatalf("node %d with home down: status %d (%v)", i, status, payload)
		}
		ans, _ := payload["answer"].(map[string]any)
		if ans["min_ratio"] != float64(7) {
			t.Errorf("node %d: answer %v", i, payload["answer"])
		}
	}
	if got := nodes[other].cluster.Status().Fallbacks; got < 1 {
		t.Errorf("survivor recorded %d fallbacks, want at least 1", got)
	}
	if nodes[home].solves() != 0 {
		t.Errorf("dead home cannot have solved")
	}

	// The fallback answer was cached locally: a repeat on the same survivor
	// is a replica hit — cached, no new solve, no network.
	before := nodes[other].solves()
	status, payload := nodes[other].post(t, "/v1/query", thresholdEnvelope)
	if status != http.StatusOK || payload["cached"] != true {
		t.Fatalf("repeat after fallback: status %d cached %v", status, payload["cached"])
	}
	if nodes[other].solves() != before {
		t.Error("repeat after fallback must not re-solve")
	}
	if got := nodes[other].cluster.Status().ReplicaHits; got < 1 {
		t.Errorf("survivor recorded %d replica hits, want at least 1", got)
	}
}

// TestClusterForwardLoopGuard: a request carrying the forwarded marker is
// answered locally even by a non-home node — one hop, never two.
func TestClusterForwardLoopGuard(t *testing.T) {
	nodes := newTestCluster(t, 3)
	_, other := homeOf(t, nodes, thresholdEnvelope)

	req, err := http.NewRequest(http.MethodPost, nodes[other].url+"/v1/query", strings.NewReader(thresholdEnvelope))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(peer.ForwardHeader, "http://elsewhere:1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded request: status %d", resp.StatusCode)
	}
	if nodes[other].solves() != 1 {
		t.Errorf("non-home node must solve a forwarded request locally (%d solves)", nodes[other].solves())
	}
	st := nodes[other].cluster.Status()
	if st.Forwards != 0 {
		t.Errorf("a forwarded request must never be re-forwarded (%d forwards)", st.Forwards)
	}
	if st.ForwardedIn != 1 {
		t.Errorf("forwarded-in counter %d, want 1", st.ForwardedIn)
	}
}

// TestClusterBatchPartition: a mixed batch posted to one node fans out to
// each item's home — every distinct envelope solves exactly once fleet-wide,
// wherever it was homed, and a repeat batch is answered entirely from caches.
func TestClusterBatchPartition(t *testing.T) {
	nodes := newTestCluster(t, 3)
	const n = 12
	envs := make([]string, n)
	for i := range envs {
		envs[i] = fmt.Sprintf(`{"kind": "threshold", "w": 10, "o": 10, "util": 0.1, "target_eff": 0.8, "seed": %d}`, i+1)
	}
	batch := "[" + strings.Join(envs, ",") + "]"

	status, payload := nodes[0].post(t, "/v1/batch", batch)
	if status != http.StatusOK {
		t.Fatalf("batch status %d (%v)", status, payload)
	}
	if payload["ok"] != float64(n) || payload["failed"] != float64(0) {
		t.Fatalf("batch ok=%v failed=%v, want %d/0", payload["ok"], payload["failed"], n)
	}
	items := payload["items"].([]any)
	for i, it := range items {
		item := it.(map[string]any)
		if item["status"] != float64(http.StatusOK) {
			t.Errorf("item %d: %v", i, item)
		}
		ans, _ := item["answer"].(map[string]any)
		if ans["min_ratio"] != float64(7) {
			t.Errorf("item %d answer %v", i, item["answer"])
		}
	}
	if got := fleetSolves(nodes); got != n {
		t.Fatalf("%d solver calls fleet-wide for %d distinct envelopes, want exactly %d", got, n, n)
	}
	// The envelopes landed on their homes, so with 12 seeds and 3 nodes each
	// node should have solved at least one (overwhelmingly likely under any
	// reasonable ring balance) — and forwarding must actually have happened.
	if st := nodes[0].cluster.Status(); st.Forwards == 0 {
		t.Error("a 12-envelope batch on a 3-node ring should forward sub-batches")
	}

	// Repeat: all cached (home hits and adopted replicas), no new solves.
	status, payload = nodes[0].post(t, "/v1/batch", batch)
	if status != http.StatusOK || payload["cached"] != float64(n) {
		t.Fatalf("repeat batch: status %d cached %v, want all %d cached", status, payload["cached"], n)
	}
	if got := fleetSolves(nodes); got != n {
		t.Errorf("repeat batch re-solved: %d fleet-wide calls, want still %d", got, n)
	}
}

// TestClusterStatsExposure: /v1/stats carries the cluster block and the
// per-shard cache breakdown; /v1/cluster reports ring, health and
// local_solves on cluster nodes and enabled=false on single nodes.
func TestClusterStatsExposure(t *testing.T) {
	nodes := newTestCluster(t, 3)
	home, other := homeOf(t, nodes, thresholdEnvelope)
	if status, _ := nodes[other].post(t, "/v1/query", thresholdEnvelope); status != http.StatusOK {
		t.Fatal("query failed")
	}

	resp, err := http.Get(nodes[other].url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Cluster == nil {
		t.Fatal("cluster node stats must carry the cluster block")
	}
	if st.Cluster.Forwards != 1 || len(st.Cluster.Members) != 3 {
		t.Errorf("cluster block %+v, want 1 forward across 3 members", st.Cluster)
	}
	if len(st.Cache.PerShard) != st.Cache.Shards {
		t.Errorf("%d per-shard stats for %d shards", len(st.Cache.PerShard), st.Cache.Shards)
	}

	var view struct {
		Enabled     bool         `json:"enabled"`
		LocalSolves int64        `json:"local_solves"`
		Cluster     *peer.Status `json:"cluster"`
	}
	get := func(url string) {
		t.Helper()
		resp, err := http.Get(url + "/v1/cluster")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		view = struct {
			Enabled     bool         `json:"enabled"`
			LocalSolves int64        `json:"local_solves"`
			Cluster     *peer.Status `json:"cluster"`
		}{}
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
	}
	get(nodes[home].url)
	if !view.Enabled || view.LocalSolves != 1 || view.Cluster == nil {
		t.Errorf("home /v1/cluster: enabled=%v local_solves=%d", view.Enabled, view.LocalSolves)
	}
	get(nodes[other].url)
	if !view.Enabled || view.LocalSolves != 0 {
		t.Errorf("forwarder /v1/cluster: enabled=%v local_solves=%d, want 0 local solves", view.Enabled, view.LocalSolves)
	}

	// A single-node server answers the same endpoint with enabled=false.
	_, ts := newTestServer(t, serve.Config{
		Solvers:        map[string]solve.Solver{"gated": &gatedSolver{name: "gated"}},
		DefaultBackend: "gated",
	})
	resp2, err := http.Get(ts.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var single map[string]any
	if err := json.NewDecoder(resp2.Body).Decode(&single); err != nil {
		t.Fatal(err)
	}
	if single["enabled"] != false {
		t.Errorf("single-node /v1/cluster: %v", single)
	}
}

// TestClusterEjectReadmitEndToEnd: a node that dies is ejected after
// FailAfter probe failures (queries fall back without attempting the
// forward), and a node that comes back on the same address is readmitted.
func TestClusterEjectReadmitEndToEnd(t *testing.T) {
	nodes := newTestCluster(t, 3)
	home, other := homeOf(t, nodes, thresholdEnvelope)

	addr := nodes[home].ln.Addr().String()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := nodes[home].srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()

	waitHealth := func(node *clusterNode, url string, want bool, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for node.cluster.Healthy(url) != want {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	waitHealth(nodes[other], nodes[home].url, false, "ejection of the dead home")

	// With the home ejected, a query falls back before any network attempt.
	st0 := nodes[other].cluster.Status()
	if status, _ := nodes[other].post(t, "/v1/query", thresholdEnvelope); status != http.StatusOK {
		t.Fatal("query with ejected home failed")
	}
	st1 := nodes[other].cluster.Status()
	if st1.Fallbacks <= st0.Fallbacks {
		t.Error("ejected home should count a fallback")
	}
	if st1.Forwards != st0.Forwards {
		t.Error("ejected home must not be forwarded to")
	}

	// Resurrect a healthz-only listener on the same address: the prober
	// readmits the member. (A real redeploy would bring back a full node.)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(`{"status":"ok"}`))
	})
	revived := &http.Server{Handler: mux}
	go revived.Serve(ln)
	t.Cleanup(func() { revived.Close() })

	waitHealth(nodes[other], nodes[home].url, true, "readmission of the revived home")
	if st := nodes[other].cluster.Status(); len(st.Peers) != 2 {
		t.Errorf("peer table %+v, want 2 remote members", st.Peers)
	}
}
