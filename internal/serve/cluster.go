package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"feasim/internal/peer"
	"feasim/internal/solve"
)

// Cluster mode: the multi-node answer tier. Each query's cache key doubles
// as a routing key (solve.RouteHash); a consistent-hash ring over the static
// member list assigns the key one home node fleet-wide. A non-home node
// forwards the envelope to the home over the ordinary /v1/query//v1/batch
// wire format — so the home's LRU and single-flight make N nodes behave as
// one cache and one solver fleet — and adopts the returned answer as a local
// replica, so repeats of a hot key stop crossing the network. When the home
// is unhealthy (ejected by the prober) or a forward fails, the node solves
// locally instead: availability over strict ownership, counted as a
// fallback. Requests carrying the loop-guard header are always answered
// locally, bounding any ring disagreement to one hop.
//
// The forward path is hardened (PR 7): per-peer circuit breakers gate who is
// forwarded to at all (Allow, not just Healthy — a cooled-down open breaker
// admits one trial), single-query forwards are hedged to the next ring owner
// after an adaptive delay, retries ride a cluster-wide token budget, and a
// 200 whose body fails to parse is treated as the peer failure it is —
// counted against the home's breaker and answered by a local solve, never
// echoed to the client.

// routeQuery decides route-or-solve for a single query and reports true when
// it wrote the response (replica hit or forwarded verdict). false means the
// caller must solve locally — the key is homed here, unroutable, or the home
// is unreachable (fallback).
func (s *Server) routeQuery(ctx context.Context, w http.ResponseWriter, sv *solve.CachedSolver, q solve.Query, body []byte, rawQuery string) bool {
	h, ok := solve.RouteHash(sv.Name(), q)
	if !ok {
		return false
	}
	home, local := s.cluster.Home(h)
	if local {
		return false
	}
	start := time.Now()
	if a, enc, ok := sv.Peek(q); ok {
		s.cluster.NoteReplicaHit()
		s.writeJSON(w, http.StatusOK, queryResponse{
			Kind:      a.Kind(),
			Backend:   sv.Name(),
			Cached:    true,
			ElapsedNS: time.Since(start).Nanoseconds(),
			Answer:    answerPayload(a, enc, true),
		})
		return true
	}
	if !s.cluster.Allow(home) {
		s.cluster.NoteFallback()
		return false
	}
	status, respBody, err := s.cluster.ForwardHedged(ctx, h, home, "/v1/query", rawQuery, body)
	if err != nil {
		// Includes peer.ErrHedgeLocal: the hedge decided a local solve beats
		// waiting out a slow home with no healthy alternative.
		s.cluster.NoteFallback()
		return false
	}
	if status == http.StatusOK && !s.storeReplica(sv, q, respBody) {
		// A 200 whose body does not parse as an answer must never reach the
		// client (it would surface a decode error for a query the cluster can
		// answer). Count the home's corruption against its breaker and solve
		// locally.
		s.cluster.NoteCorrupt(home)
		s.cluster.NoteFallback()
		return false
	}
	// Echo the home's verdict verbatim — including 4xx, which judged the
	// envelope itself. The home counted the request in its own stats; this
	// node only counted the forward.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(respBody)
	return true
}

// forwardedAnswer is the slice of a peer's queryResponse / batch-item wire
// shape the replica path reads back.
type forwardedAnswer struct {
	Kind   string          `json:"kind"`
	Answer json.RawMessage `json:"answer"`
}

// storeReplica adopts a forwarded 200 response as a local cache entry. The
// body is re-parsed into a typed Answer (never trusting the peer's bytes
// into the cache verbatim: the local entry must carry this cache's canonical
// scrubbed encoding, not whatever elapsed stamp the wire had). Reports
// whether the body parsed — false means the 200 is corrupt and the caller
// must not echo it (the PR 7 regression: storeReplica used to swallow the
// parse failure while routeQuery echoed the garbage body anyway).
func (s *Server) storeReplica(sv *solve.CachedSolver, q solve.Query, respBody []byte) bool {
	var fa forwardedAnswer
	if err := json.Unmarshal(respBody, &fa); err != nil || fa.Kind == "" || len(fa.Answer) == 0 {
		return false
	}
	a, err := solve.ParseAnswer(fa.Kind, fa.Answer)
	if err != nil {
		return false
	}
	sv.StoreReplica(q, a)
	return true
}

// routeBatchItems partitions a batch's parseable items by home node: items
// answerable from the local replica cache are filled in directly, items
// homed on a healthy peer are fanned out as one sub-batch per peer, and
// everything else — homed here, unroutable, or fallen back — is returned as
// the list the caller's local worker pool must still answer. items is
// written at disjoint indices only.
func (s *Server) routeBatchItems(ctx context.Context, sv *solve.CachedSolver, envs []json.RawMessage, queries []solve.Query, items []batchItem, todo []int, rawQuery string) []int {
	local := make([]int, 0, len(todo))
	var groups map[string][]int
	for _, i := range todo {
		h, ok := solve.RouteHash(sv.Name(), queries[i])
		if !ok {
			local = append(local, i)
			continue
		}
		home, isLocal := s.cluster.Home(h)
		if isLocal {
			local = append(local, i)
			continue
		}
		start := time.Now()
		if a, enc, ok := sv.Peek(queries[i]); ok {
			s.cluster.NoteReplicaHit()
			items[i] = batchItem{
				Status:    http.StatusOK,
				Kind:      a.Kind(),
				Cached:    true,
				ElapsedNS: time.Since(start).Nanoseconds(),
				Answer:    answerPayload(a, enc, true),
			}
			continue
		}
		if !s.cluster.Allow(home) {
			s.cluster.NoteFallback()
			local = append(local, i)
			continue
		}
		if groups == nil {
			groups = make(map[string][]int)
		}
		groups[home] = append(groups[home], i)
	}
	if len(groups) == 0 {
		return local
	}

	var mu sync.Mutex // guards local across sub-batch goroutines
	var wg sync.WaitGroup
	for home, idxs := range groups {
		wg.Add(1)
		go func(home string, idxs []int) {
			defer wg.Done()
			rescue := func() {
				for range idxs {
					s.cluster.NoteFallback()
				}
				mu.Lock()
				local = append(local, idxs...)
				mu.Unlock()
			}
			sub := make([]json.RawMessage, len(idxs))
			for j, i := range idxs {
				sub[j] = envs[i]
			}
			body, err := json.Marshal(sub)
			if err != nil {
				rescue()
				return
			}
			status, respBody, err := s.cluster.Forward(ctx, home, "/v1/batch", rawQuery, body)
			if err != nil || status != http.StatusOK {
				// A non-200 here rejected the whole sub-batch (taxonomy says
				// per-item failures still answer 200) — treat like a transport
				// failure and solve the items locally.
				rescue()
				return
			}
			var br struct {
				Items []struct {
					Status    int             `json:"status"`
					Kind      string          `json:"kind"`
					Cached    bool            `json:"cached"`
					ElapsedNS int64           `json:"elapsed_ns"`
					Answer    json.RawMessage `json:"answer"`
					Error     string          `json:"error"`
				} `json:"items"`
			}
			if err := json.Unmarshal(respBody, &br); err != nil || len(br.Items) != len(idxs) {
				rescue()
				return
			}
			for j, it := range br.Items {
				i := idxs[j]
				if it.Status == http.StatusOK {
					// Same contract as routeQuery: a 200 item whose answer
					// does not parse is corrupt — never passed through.
					// Rescue it locally and charge the home's breaker.
					a, err := solve.ParseAnswer(it.Kind, it.Answer)
					if err != nil {
						s.cluster.NoteCorrupt(home)
						s.cluster.NoteFallback()
						mu.Lock()
						local = append(local, i)
						mu.Unlock()
						continue
					}
					sv.StoreReplica(queries[i], a)
				}
				items[i] = batchItem{
					Status:    it.Status,
					Kind:      it.Kind,
					Cached:    it.Cached,
					ElapsedNS: it.ElapsedNS,
					Error:     it.Error,
				}
				if len(it.Answer) > 0 {
					items[i].Answer = it.Answer
				}
			}
		}(home, idxs)
	}
	wg.Wait()
	return local
}

// clusterResponse is the GET /v1/cluster payload. Served in single-node mode
// too (enabled=false), so fleet tooling can poll every node uniformly.
type clusterResponse struct {
	Enabled bool `json:"enabled"`
	// LocalSolves counts backend executions this node performed (exactly the
	// answer cache's misses: hits, coalesced waiters and replica echoes never
	// reach a backend, and routing probes don't count). Summing it across
	// members gives the fleet-wide solve count — the number the cluster
	// exists to minimize.
	LocalSolves int64 `json:"local_solves"`
	// Overload-protection counters, mirrored from /v1/stats so fleet tooling
	// polling /v1/cluster sees the resilience picture in one request.
	Rejected int64        `json:"rejected"`
	Panics   int64        `json:"panics"`
	Sheds    int64        `json:"sheds"`
	Cluster  *peer.Status `json:"cluster,omitempty"`
}

func (s *Server) handleCluster(w http.ResponseWriter, _ *http.Request) {
	resp := clusterResponse{
		LocalSolves: s.cache.Stats().Misses,
		Rejected:    s.rejected.Load(),
		Panics:      s.panics.Load(),
		Sheds:       s.sheds.Load(),
	}
	if s.cluster != nil {
		resp.Enabled = true
		st := s.cluster.Status()
		resp.Cluster = &st
	}
	s.writeJSON(w, http.StatusOK, resp)
}
