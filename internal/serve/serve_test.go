package serve_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"feasim/internal/serve"
	"feasim/internal/sim"
	"feasim/internal/solve"
)

// gatedSolver counts Answer executions, tracks the concurrency high-water
// mark, and can gate execution on a channel so tests control overlap.
type gatedSolver struct {
	name    string
	calls   atomic.Int64
	active  atomic.Int64
	highs   atomic.Int64
	release chan struct{} // nil: answer immediately
}

func (g *gatedSolver) Name() string           { return g.name }
func (g *gatedSolver) Capabilities() []string { return solve.QueryKinds() }

func (g *gatedSolver) Answer(ctx context.Context, q solve.Query) (solve.Answer, error) {
	g.calls.Add(1)
	cur := g.active.Add(1)
	defer g.active.Add(-1)
	for {
		high := g.highs.Load()
		if cur <= high || g.highs.CompareAndSwap(high, cur) {
			break
		}
	}
	if g.release != nil {
		select {
		case <-g.release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return solve.ThresholdAnswer{Backend: g.name, MinRatio: 7}, nil
}

func (g *gatedSolver) Solve(ctx context.Context, s solve.Scenario) (solve.Report, error) {
	a, err := g.Answer(ctx, solve.ReportQuery{Scenario: s})
	if err != nil {
		return solve.Report{}, err
	}
	return a.(solve.ReportAnswer).Report, nil
}

// newTestServer builds a Server plus an httptest front-end.
func newTestServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends a JSON body and returns the status plus decoded payload.
func post(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var payload map[string]any
	if err := json.Unmarshal(data, &payload); err != nil {
		t.Fatalf("status %d: non-JSON response %q: %v", resp.StatusCode, data, err)
	}
	return resp.StatusCode, payload
}

const thresholdEnvelope = `{"kind": "threshold", "w": 10, "o": 10, "util": 0.1, "target_eff": 0.8, "seed": 1}`

// TestQueryEndpointAnswersEveryKind: the analytic backend answers all five
// kinds over HTTP with the documented response shape.
func TestQueryEndpointAnswersEveryKind(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	envelopes := map[string]string{
		solve.KindReport:       `{"kind": "report", "scenario": {"j": 1000, "w": 10, "o": 10, "util": 0.05}}`,
		solve.KindThreshold:    thresholdEnvelope,
		solve.KindPartition:    `{"kind": "partition", "j": 2000, "o": 10, "util": 0.05, "target_eff": 0.8, "max_w": 200}`,
		solve.KindDistribution: `{"kind": "distribution", "scenario": {"j": 1000, "w": 10, "o": 10, "util": 0.1}, "deadlines": [150]}`,
		solve.KindScaled:       `{"kind": "scaled", "t": 100, "o": 10, "util": 0.1, "ws": [1, 10]}`,
	}
	for kind, env := range envelopes {
		status, payload := post(t, ts.URL+"/v1/query", env)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d: %v", kind, status, payload)
		}
		if payload["kind"] != kind || payload["backend"] != solve.BackendAnalytic {
			t.Errorf("%s: kind/backend = %v/%v", kind, payload["kind"], payload["backend"])
		}
		if payload["answer"] == nil {
			t.Errorf("%s: missing answer", kind)
		}
	}
}

// TestQueryCoalescing is the acceptance check: 8 concurrent identical
// queries must execute the solver exactly once, the waiters coalescing onto
// the leader's flight, and a follow-up request must be a cache hit.
func TestQueryCoalescing(t *testing.T) {
	g := &gatedSolver{name: "gated", release: make(chan struct{})}
	s, ts := newTestServer(t, serve.Config{
		Solvers:        map[string]solve.Solver{"gated": g},
		DefaultBackend: "gated",
	})

	const n = 8
	var wg sync.WaitGroup
	statuses := make([]int, n)
	payloads := make([]map[string]any, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], payloads[i] = post(t, ts.URL+"/v1/query", thresholdEnvelope)
		}(i)
	}
	// Release the solver only once all 8 requests are accounted for: one
	// leading (miss), seven waiting (coalesced).
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := s.Stats().Cache
		if st.Misses == 1 && st.Coalesced == n-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("coalescing never converged: %+v", st)
		}
		runtime.Gosched()
	}
	close(g.release)
	wg.Wait()

	for i := 0; i < n; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d: status %d: %v", i, statuses[i], payloads[i])
		}
		ans := payloads[i]["answer"].(map[string]any)
		if ans["min_ratio"] != float64(7) {
			t.Errorf("request %d: answer %v", i, ans)
		}
	}
	if got := g.calls.Load(); got != 1 {
		t.Errorf("solver executed %d times under %d concurrent identical queries, want exactly 1", got, n)
	}

	// The answer is now resident: one more request is a cache hit and the
	// counters must line up.
	status, payload := post(t, ts.URL+"/v1/query", thresholdEnvelope)
	if status != http.StatusOK || payload["cached"] != true {
		t.Errorf("follow-up: status %d cached %v", status, payload["cached"])
	}
	if got := g.calls.Load(); got != 1 {
		t.Errorf("cache hit executed the solver: %d calls", got)
	}
	st := s.Stats()
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 || st.Cache.Coalesced != n-1 {
		t.Errorf("cache stats %+v, want 1 hit / 1 miss / %d coalesced", st.Cache, n-1)
	}
	if st.Queries != n+1 || st.PerKind[solve.KindThreshold] != n+1 {
		t.Errorf("traffic stats %+v, want %d threshold queries", st, n+1)
	}
}

// TestQueryErrorTaxonomy: malformed 400, unknown backend 400, unsupported
// kind 501, domain failure 422, wrong method 405.
func TestQueryErrorTaxonomy(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})

	status, payload := post(t, ts.URL+"/v1/query", `{"kind": `)
	if status != http.StatusBadRequest {
		t.Errorf("malformed body: status %d", status)
	}
	if msg, _ := payload["error"].(string); !strings.Contains(msg, "bad query envelope") {
		t.Errorf("malformed body: error %q should carry the decode error", msg)
	}

	status, payload = post(t, ts.URL+"/v1/query", `{"kind": "threshold", "w": 10, "o": 10, "util": 0.1, "target_eff": 0.8, "wiggle": 1}`)
	if status != http.StatusBadRequest {
		t.Errorf("unknown field: status %d (%v)", status, payload)
	}

	status, _ = post(t, ts.URL+"/v1/query?backend=csim", thresholdEnvelope)
	if status != http.StatusBadRequest {
		t.Errorf("unknown backend: status %d", status)
	}

	status, payload = post(t, ts.URL+"/v1/query?backend=des", `{"kind": "scaled", "t": 100, "o": 10, "util": 0.1, "ws": [1]}`)
	if status != http.StatusNotImplemented {
		t.Errorf("unsupported kind: status %d", status)
	}
	if msg, _ := payload["error"].(string); !strings.Contains(msg, "does not answer") {
		t.Errorf("unsupported kind: error %q should name the refusal", msg)
	}

	// Non-integral T = J/W on the exact simulator: a valid envelope the
	// backend cannot answer numerically.
	status, _ = post(t, ts.URL+"/v1/query?backend=exact", `{"kind": "report", "scenario": {"j": 1000, "w": 7, "o": 10, "util": 0.05}}`)
	if status != http.StatusUnprocessableEntity {
		t.Errorf("domain failure: status %d", status)
	}

	resp, err := http.Get(ts.URL + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/query: status %d", resp.StatusCode)
	}
}

// TestQueryDeadline: a solve that outlives the per-request timeout is 504.
func TestQueryDeadline(t *testing.T) {
	g := &gatedSolver{name: "gated", release: make(chan struct{})} // never released
	_, ts := newTestServer(t, serve.Config{
		Solvers:        map[string]solve.Solver{"gated": g},
		DefaultBackend: "gated",
		RequestTimeout: 50 * time.Millisecond,
	})
	status, _ := post(t, ts.URL+"/v1/query", thresholdEnvelope)
	if status != http.StatusGatewayTimeout {
		t.Errorf("deadline: status %d, want 504", status)
	}
}

// TestConcurrencyLimiter: MaxInFlight 1 must serialize distinct queries.
func TestConcurrencyLimiter(t *testing.T) {
	g := &gatedSolver{name: "gated"}
	_, ts := newTestServer(t, serve.Config{
		Solvers:        map[string]solve.Solver{"gated": g},
		DefaultBackend: "gated",
		MaxInFlight:    1,
	})
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			env := fmt.Sprintf(`{"kind": "threshold", "w": 10, "o": 10, "util": 0.1, "target_eff": 0.8, "seed": %d}`, i+1)
			if status, payload := post(t, ts.URL+"/v1/query", env); status != http.StatusOK {
				t.Errorf("request %d: status %d: %v", i, status, payload)
			}
		}(i)
	}
	wg.Wait()
	if got := g.highs.Load(); got != 1 {
		t.Errorf("solver concurrency high-water %d under MaxInFlight=1", got)
	}
	if got := g.calls.Load(); got != 6 {
		t.Errorf("distinct queries must not coalesce: %d calls, want 6", got)
	}
}

// TestBatchMatchesQuery is the batch golden: every kind's envelope answered
// through /v1/batch must carry byte-for-byte the answer /v1/query gives for
// the same envelope (modulo wall-clock timings), in request order.
func TestBatchMatchesQuery(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	envelopes := []string{
		`{"kind": "report", "scenario": {"j": 1000, "w": 10, "o": 10, "util": 0.05}}`,
		thresholdEnvelope,
		`{"kind": "partition", "j": 2000, "o": 10, "util": 0.05, "target_eff": 0.8, "max_w": 200}`,
		`{"kind": "distribution", "scenario": {"j": 1000, "w": 10, "o": 10, "util": 0.1}, "deadlines": [150]}`,
		`{"kind": "scaled", "t": 100, "o": 10, "util": 0.1, "ws": [1, 10]}`,
	}
	wantKinds := []string{solve.KindReport, solve.KindThreshold, solve.KindPartition,
		solve.KindDistribution, solve.KindScaled}

	status, payload := post(t, ts.URL+"/v1/batch", "["+strings.Join(envelopes, ",")+"]")
	if status != http.StatusOK {
		t.Fatalf("batch: status %d: %v", status, payload)
	}
	if payload["backend"] != solve.BackendAnalytic || payload["ok"] != float64(len(envelopes)) || payload["failed"] != float64(0) {
		t.Errorf("batch summary %v", payload)
	}
	items := payload["items"].([]any)
	if len(items) != len(envelopes) {
		t.Fatalf("got %d items for %d envelopes", len(items), len(envelopes))
	}
	// strip drops the volatile fields (wall-clock timings) recursively.
	var strip func(v any) any
	strip = func(v any) any {
		m, ok := v.(map[string]any)
		if !ok {
			return v
		}
		out := make(map[string]any, len(m))
		for k, val := range m {
			if k == "elapsed_ns" {
				continue
			}
			out[k] = strip(val)
		}
		return out
	}
	for i, raw := range items {
		item := raw.(map[string]any)
		if item["status"] != float64(http.StatusOK) || item["kind"] != wantKinds[i] {
			t.Errorf("item %d: status/kind = %v/%v, want 200/%s", i, item["status"], item["kind"], wantKinds[i])
			continue
		}
		qstatus, qpayload := post(t, ts.URL+"/v1/query", envelopes[i])
		if qstatus != http.StatusOK {
			t.Fatalf("query %d: status %d", i, qstatus)
		}
		got := strip(item["answer"])
		want := strip(qpayload["answer"])
		if !reflect.DeepEqual(got, want) {
			t.Errorf("item %d (%s): batch answer diverges from /v1/query:\n batch: %v\n query: %v",
				i, wantKinds[i], got, want)
		}
	}
}

// TestBatchPartialFailure: one bad envelope inside a batch fails alone with
// its own 400 (or taxonomy status), leaving its neighbors answered.
func TestBatchPartialFailure(t *testing.T) {
	s, ts := newTestServer(t, serve.Config{})
	batch := `[` + thresholdEnvelope + `,
		{"kind": "bogus"},
		{"kind": "scaled", "t": 100, "o": 10, "util": 0.1, "ws": [1]}]`
	status, payload := post(t, ts.URL+"/v1/batch", batch)
	if status != http.StatusOK {
		t.Fatalf("partial batch must still be 200: %d %v", status, payload)
	}
	if payload["ok"] != float64(2) || payload["failed"] != float64(1) {
		t.Errorf("summary %v, want ok=2 failed=1", payload)
	}
	items := payload["items"].([]any)
	wantStatus := []float64{200, 400, 200}
	for i, raw := range items {
		item := raw.(map[string]any)
		if item["status"] != wantStatus[i] {
			t.Errorf("item %d: status %v, want %v", i, item["status"], wantStatus[i])
		}
		if i == 1 {
			if msg, _ := item["error"].(string); msg == "" {
				t.Error("failed item must carry its error")
			}
			if item["answer"] != nil {
				t.Error("failed item must not carry an answer")
			}
		}
	}
	// A failing item is the caller's business, not a service error.
	if st := s.Stats(); st.Errors != 0 || st.Batches != 1 || st.BatchItems != 2 {
		t.Errorf("stats %+v, want 0 errors / 1 batch / 2 parsed items", st)
	}
}

// TestBatchDeduplicates: identical envelopes inside one batch ride the
// shared answer layer — the backend executes exactly once whether the items
// coalesce in flight or hit the freshly stored answer.
func TestBatchDeduplicates(t *testing.T) {
	g := &gatedSolver{name: "gated"}
	s, ts := newTestServer(t, serve.Config{
		Solvers:        map[string]solve.Solver{"gated": g},
		DefaultBackend: "gated",
	})
	const n = 8
	envs := make([]string, n)
	for i := range envs {
		envs[i] = thresholdEnvelope
	}
	status, payload := post(t, ts.URL+"/v1/batch", "["+strings.Join(envs, ",")+"]")
	if status != http.StatusOK {
		t.Fatalf("batch: status %d: %v", status, payload)
	}
	if payload["ok"] != float64(n) {
		t.Errorf("summary %v, want %d ok", payload, n)
	}
	if got := g.calls.Load(); got != 1 {
		t.Errorf("solver executed %d times for %d identical items, want exactly 1", got, n)
	}
	st := s.Stats()
	if st.Cache.Misses != 1 || st.Cache.Hits+st.Cache.Coalesced != n-1 {
		t.Errorf("cache stats %+v, want 1 miss and %d hits+coalesced", st.Cache, n-1)
	}
	if st.PerKind[solve.KindThreshold] != n {
		t.Errorf("per-kind count %d, want %d", st.PerKind[solve.KindThreshold], n)
	}
}

// TestBatchErrors: the array shell itself must validate — non-array body,
// empty array, oversized array and unknown backend are whole-request 400s.
func TestBatchErrors(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	if status, _ := post(t, ts.URL+"/v1/batch", thresholdEnvelope); status != http.StatusBadRequest {
		t.Errorf("non-array body: status %d", status)
	}
	if status, _ := post(t, ts.URL+"/v1/batch", `[]`); status != http.StatusBadRequest {
		t.Errorf("empty batch: status %d", status)
	}
	big := "[" + strings.Repeat(thresholdEnvelope+",", 1024) + thresholdEnvelope + "]"
	if status, _ := post(t, ts.URL+"/v1/batch", big); status != http.StatusBadRequest {
		t.Errorf("oversized batch: status %d", status)
	}
	if status, _ := post(t, ts.URL+"/v1/batch?backend=csim", "["+thresholdEnvelope+"]"); status != http.StatusBadRequest {
		t.Errorf("unknown backend: status %d", status)
	}
}

// TestSweepEndpoint: a small analytic grid comes back complete and in grid
// order, with dedup visible in the cached count; malformed specs are 400.
func TestSweepEndpoint(t *testing.T) {
	s, ts := newTestServer(t, serve.Config{})
	spec := `{
		"base": {"kind": "threshold", "w": 20, "o": 10, "target_eff": 0.8},
		"util": [0.05, 0.1, 0.1],
		"workers": 1,
		"seed": 4
	}`
	status, payload := post(t, ts.URL+"/v1/sweep", spec)
	if status != http.StatusOK {
		t.Fatalf("sweep: status %d: %v", status, payload)
	}
	if payload["points"] != float64(3) || payload["failed"] != nil && payload["failed"] != float64(0) {
		t.Errorf("sweep summary %v", payload)
	}
	if payload["cached"] != float64(1) {
		t.Errorf("duplicate util grid point should dedup: %v", payload["cached"])
	}
	results := payload["results"].([]any)
	for i, r := range results {
		if idx := r.(map[string]any)["point"].(map[string]any)["index"]; idx != float64(i) {
			t.Errorf("result %d carries index %v: not grid order", i, idx)
		}
	}
	if st := s.Stats(); st.Sweeps != 1 {
		t.Errorf("sweeps counter %d, want 1", st.Sweeps)
	}

	if status, _ := post(t, ts.URL+"/v1/sweep", `{"w": [1]}`); status != http.StatusBadRequest {
		t.Errorf("sweep without base: status %d", status)
	}
	if status, _ := post(t, ts.URL+"/v1/sweep", `{"base": {"kind": "bogus"}}`); status != http.StatusBadRequest {
		t.Errorf("sweep with bad base kind: status %d", status)
	}
}

// TestSweepInheritsServerOptions: a sweep spec that does not configure its
// simulation backends must inherit the server's protocol, so /v1/query and
// /v1/sweep answer one envelope identically.
func TestSweepInheritsServerOptions(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{
		Options: solve.Options{Protocol: sim.Protocol{Batches: 3, BatchSize: 30, Level: 0.9}},
	})
	spec := `{
		"base": {"kind": "report", "scenario": {"j": 200, "w": 4, "o": 10, "seed": 1}},
		"util": [0.05],
		"backends": ["exact"]
	}`
	status, payload := post(t, ts.URL+"/v1/sweep", spec)
	if status != http.StatusOK {
		t.Fatalf("sweep: status %d: %v", status, payload)
	}
	results := payload["results"].([]any)
	if len(results) != 1 {
		t.Fatalf("got %d results", len(results))
	}
	rep := results[0].(map[string]any)["answer"].(map[string]any)["report"].(map[string]any)
	// 3 batches × 30 samples — the server's protocol, not the paper default
	// (20×1000) the engine would otherwise build.
	if rep["samples"] != float64(90) {
		t.Errorf("sweep probe used %v samples, want the server protocol's 90", rep["samples"])
	}
}

// TestHealthzAndStats: the probes respond and stats carry the documented
// shape.
func TestHealthzAndStats(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	for _, ep := range []string{"/v1/healthz", "/v1/stats"} {
		resp, err := http.Get(ts.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", ep, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: content type %q", ep, ct)
		}
		if ep == "/v1/stats" {
			var st serve.Stats
			if err := json.Unmarshal(data, &st); err != nil {
				t.Fatalf("stats: %v", err)
			}
			if st.PerKind == nil || st.Cache.Capacity == 0 {
				t.Errorf("stats payload incomplete: %+v", st)
			}
		}
	}
}

// TestGracefulShutdownDrains: Shutdown must wait for an in-flight request
// to complete (and that request must succeed), then refuse new connections.
func TestGracefulShutdownDrains(t *testing.T) {
	g := &gatedSolver{name: "gated", release: make(chan struct{})}
	s, err := serve.New(serve.Config{
		Solvers:        map[string]solve.Solver{"gated": g},
		DefaultBackend: "gated",
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()
	url := "http://" + ln.Addr().String()

	reqDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(url+"/v1/query", "application/json", strings.NewReader(thresholdEnvelope))
		if err != nil {
			reqDone <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		reqDone <- resp.StatusCode
	}()
	deadline := time.Now().Add(10 * time.Second)
	for g.calls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never reached the solver")
		}
		runtime.Gosched()
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	select {
	case err := <-shutdownDone:
		t.Fatalf("shutdown returned %v with a request still in flight", err)
	case <-time.After(100 * time.Millisecond):
	}

	close(g.release)
	if status := <-reqDone; status != http.StatusOK {
		t.Errorf("in-flight request finished with status %d, want 200 after drain", status)
	}
	if err := <-shutdownDone; err != nil {
		t.Errorf("shutdown: %v", err)
	}
	if err := <-serveDone; err != http.ErrServerClosed {
		t.Errorf("Serve returned %v, want http.ErrServerClosed", err)
	}
	if _, err := http.Post(url+"/v1/query", "application/json", strings.NewReader(thresholdEnvelope)); err == nil {
		t.Error("post-shutdown request should fail to connect")
	}
}

// TestConfigValidation: a default backend outside the solver set must be
// rejected at construction.
func TestConfigValidation(t *testing.T) {
	if _, err := serve.New(serve.Config{DefaultBackend: "csim"}); err == nil {
		t.Error("unknown default backend should error")
	}
	if _, err := serve.New(serve.Config{Solvers: map[string]solve.Solver{}}); err == nil {
		t.Error("empty solver set should error")
	}
	g := &gatedSolver{name: "gated"}
	if _, err := serve.New(serve.Config{Solvers: map[string]solve.Solver{"gated": g}}); err == nil {
		t.Error("non-standard solver set without DefaultBackend should error")
	}
}
