package serve_test

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"feasim/internal/serve"
	"feasim/internal/solve"
)

// permitSolver answers report queries with a rule-based feasibility verdict
// (feasible iff scenario util < 0.3), gated on a permit channel so tests
// control exactly how many probes may run. It registers as "analytic" so the
// frontier path exercises the server's default cached-solver wiring.
type permitSolver struct {
	permits chan struct{}
}

func (p *permitSolver) Name() string           { return solve.BackendAnalytic }
func (p *permitSolver) Capabilities() []string { return solve.QueryKinds() }

func (p *permitSolver) Answer(ctx context.Context, q solve.Query) (solve.Answer, error) {
	select {
	case <-p.permits:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	sc := q.(solve.ReportQuery).Scenario
	feasible := sc.Util < 0.3
	return solve.ReportAnswer{Report: solve.Report{
		Scenario: sc, Backend: p.Name(), W: sc.W, Feasible: &feasible,
	}}, nil
}

func (p *permitSolver) Solve(ctx context.Context, s solve.Scenario) (solve.Report, error) {
	a, err := p.Answer(ctx, solve.ReportQuery{Scenario: s})
	if err != nil {
		return solve.Report{}, err
	}
	return a.(solve.ReportAnswer).Report, nil
}

// frontierSpecJSON is the fixture streamed by the frontier endpoint tests:
// coarse 2 × depth 1 (resolution 4) over a vertical feasibility boundary at
// util 0.3, one worker so permit accounting is deterministic.
const frontierSpecJSON = `{
	"base": {"kind": "report", "scenario": {"j": 1000, "w": 10, "o": 10, "util": 0.1, "target_eff": 0.8}},
	"x": {"axis": "util", "min": 0.1, "max": 0.5},
	"y": {"axis": "task_ratio", "min": 10, "max": 50},
	"coarse": 2, "depth": 1, "workers": 1, "seed": 3
}`

// TestFrontierEndpointStreamsIncrementally is the tentpole's streaming
// acceptance proof: with exactly enough permits for the coarse level, the
// first resolved-cell lines must arrive over the wire while the refinement
// level is still blocked inside the solver — the stream cannot be a buffered
// response in disguise.
func TestFrontierEndpointStreamsIncrementally(t *testing.T) {
	p := &permitSolver{permits: make(chan struct{}, 64)}
	_, ts := newTestServer(t, serve.Config{
		Solvers: map[string]solve.Solver{solve.BackendAnalytic: p},
	})
	// The coarse level evaluates the 3×3 node lattice: 9 probes, not one
	// more. Level 1 then blocks on the 10th permit.
	for i := 0; i < 9; i++ {
		p.permits <- struct{}{}
	}
	resp, err := http.Post(ts.URL+"/v1/sweep?mode=frontier", "application/json", strings.NewReader(frontierSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	readLine := func() map[string]any {
		t.Helper()
		if !sc.Scan() {
			t.Fatalf("stream ended early: %v", sc.Err())
		}
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		return m
	}
	// The two uniform coarse cells (util ≥ 0.3, both infeasible) resolve at
	// depth 0 and must arrive now, while the run is provably incomplete: the
	// permit budget is exhausted, so the refinement level cannot have run.
	for i := 0; i < 2; i++ {
		line := readLine()
		if line["verdict"] != "infeasible" || line["depth"] != float64(0) {
			t.Fatalf("early line %d: want a depth-0 infeasible cell, got %v", i, line)
		}
	}
	if len(p.permits) != 0 {
		t.Fatalf("%d permits left over; the coarse level should consume exactly 9", len(p.permits))
	}
	// Unblock the refinement level and drain the rest of the stream.
	close(p.permits)
	var cells int = 2
	var done map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if m["done"] == true {
			done = m
			continue
		}
		if m["error"] != nil {
			t.Fatalf("unexpected terminal error record: %v", m)
		}
		cells++
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	if done == nil {
		t.Fatal("stream ended without the terminal done record")
	}
	stats, ok := done["stats"].(map[string]any)
	if !ok {
		t.Fatalf("done record carries no stats: %v", done)
	}
	if stats["resolution"] != float64(4) {
		t.Errorf("stats.resolution = %v, want 4", stats["resolution"])
	}
	if int(stats["cells"].(float64)) != cells {
		t.Errorf("stats.cells = %v, but %d cell lines streamed", stats["cells"], cells)
	}
	if stats["boundary"].(float64) == 0 {
		t.Error("no boundary cells; the util-0.3 line should cross the window")
	}
	if stats["evaluations"].(float64) >= stats["dense_evaluations"].(float64) {
		t.Errorf("adaptive probes %v not below dense %v", stats["evaluations"], stats["dense_evaluations"])
	}
}

// TestFrontierEndpointDeadlineTerminalRecord: when the per-request deadline
// expires mid-run, the committed 200 stream must end with a terminal NDJSON
// error record carrying the 504 taxonomy code — never a silently truncated
// body.
func TestFrontierEndpointDeadlineTerminalRecord(t *testing.T) {
	p := &permitSolver{permits: make(chan struct{})} // never released
	_, ts := newTestServer(t, serve.Config{
		Solvers:        map[string]solve.Solver{solve.BackendAnalytic: p},
		RequestTimeout: 100 * time.Millisecond,
	})
	resp, err := http.Post(ts.URL+"/v1/sweep?mode=frontier", "application/json", strings.NewReader(frontierSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (the stream commits 200 before the deadline can fire)", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	var last map[string]any
	lines := 0
	for sc.Scan() {
		last = nil
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines++
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	if last == nil {
		t.Fatal("stream carried no terminal record")
	}
	if last["done"] == true {
		t.Fatalf("blocked run reported success: %v", last)
	}
	if last["status"] != float64(http.StatusGatewayTimeout) {
		t.Errorf("terminal record status = %v, want 504", last["status"])
	}
	if msg, _ := last["error"].(string); !strings.Contains(msg, "stopped after") {
		t.Errorf("terminal record error %q should say how many cells streamed", msg)
	}
}

// TestFrontierEndpointRejectsBadSpecs: malformed or invalid specs fail with
// a buffered 400 before any stream commits, and unknown modes 400 on the
// shared /v1/sweep route.
func TestFrontierEndpointRejectsBadSpecs(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	for name, body := range map[string]string{
		"not json":   `{`,
		"empty spec": `{}`,
		"same axis": `{"base": {"kind": "report", "scenario": {"j": 1000, "w": 10, "o": 10, "util": 0.1, "target_eff": 0.8}},
			"x": {"axis": "util", "min": 0.1, "max": 0.5}, "y": {"axis": "util", "min": 0.1, "max": 0.5}}`,
		"no verdict": `{"base": {"kind": "threshold", "w": 10, "o": 10, "util": 0.1, "target_eff": 0.8},
			"x": {"axis": "w", "min": 1, "max": 10}, "y": {"axis": "util", "min": 0.1, "max": 0.5}}`,
	} {
		status, payload := post(t, ts.URL+"/v1/sweep?mode=frontier", body)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d (%v), want 400", name, status, payload)
		}
	}
	status, payload := post(t, ts.URL+"/v1/sweep?mode=zigzag", `{}`)
	if status != http.StatusBadRequest {
		t.Errorf("unknown mode: status %d (%v), want 400", status, payload)
	}
	if msg, _ := payload["error"].(string); !strings.Contains(msg, "zigzag") {
		t.Errorf("unknown-mode error %q should name the mode", msg)
	}
}

// TestGridSweepDeadlineIsTaxonomied: the buffered grid path's mid-sweep
// deadline must map to 504 per the taxonomy — a regression guard against
// truncated-200 bodies (the bug class the streaming mode makes observable).
// Grid sweeps build their backends from the registry, so the slow point is a
// real DES solve far too large for the request deadline.
func TestGridSweepDeadlineIsTaxonomied(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{
		RequestTimeout: 100 * time.Millisecond,
	})
	status, payload := post(t, ts.URL+"/v1/sweep", `{
		"base": {"kind": "report", "scenario": {"j": 100000, "w": 10, "o": 10, "target_eff": 0.8}},
		"util": [0.05, 0.1], "backends": ["des"], "workers": 1, "seed": 2
	}`)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%v), want 504", status, payload)
	}
	if msg, _ := payload["error"].(string); !strings.Contains(msg, "sweep stopped after") {
		t.Errorf("error %q should report the cut point", msg)
	}
}
