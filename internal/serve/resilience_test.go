package serve_test

// The resilience suite: the PR 7 fault-handling behaviors end to end —
// corrupt-forward fallback (the regression the fault injector exists to
// pin), deadline-aware 429 admission, request panic recovery, degraded-mode
// shedding, and the chaos property test (a 3-node cluster under seeded
// transport faults answers every query correctly and never deadlocks).

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"feasim/internal/fault"
	"feasim/internal/peer"
	"feasim/internal/serve"
	"feasim/internal/solve"
)

// withChaosTransport wraps every node's peer client (probes and forwards) in
// its own deterministic injector, seeded per node.
func withChaosTransport(spec fault.Spec) clusterOpt {
	return func(i int, pc *peer.Config, sc *serve.Config) {
		s := spec
		s.Seed += int64(i)
		pc.Client = &http.Client{Transport: fault.MustNew(s).Transport(nil)}
	}
}

// TestClusterCorruptForwardFallsBack is the satellite-1 regression: a peer
// forward that comes back 200 with a body that does not parse must never be
// echoed to the client — the node counts the corruption against the home's
// breaker and answers with a local solve.
func TestClusterCorruptForwardFallsBack(t *testing.T) {
	nodes := newTestCluster(t, 2, withChaosTransport(fault.Spec{Seed: 42, Corrupt: 1}))
	home, other := homeOf(t, nodes, thresholdEnvelope)

	status, payload := nodes[other].post(t, "/v1/query", thresholdEnvelope)
	if status != http.StatusOK {
		t.Fatalf("corrupt forward must fall back to a correct local answer: status %d (%v)", status, payload)
	}
	ans, _ := payload["answer"].(map[string]any)
	if ans["min_ratio"] != float64(7) {
		t.Fatalf("fallback answer %v", payload["answer"])
	}
	if nodes[other].solves() != 1 {
		t.Errorf("the fallback must solve locally (%d local solves)", nodes[other].solves())
	}
	if nodes[home].solves() != 1 {
		// The home did solve — its 200 was garbled in flight.
		t.Errorf("the home should have solved the forwarded query once (%d)", nodes[home].solves())
	}
	st := nodes[other].cluster.Status()
	if st.ForwardCorrupt < 1 {
		t.Errorf("forward_corrupt %d, want >= 1", st.ForwardCorrupt)
	}
	if st.Fallbacks < 1 {
		t.Errorf("fallbacks %d, want >= 1", st.Fallbacks)
	}
}

// TestAdmissionRejectsDoomedRequests pins the 429 path: once the limiter is
// full and the smoothed slot hold time says a new request cannot make its
// deadline, admission rejects it immediately with Retry-After instead of
// queueing it into a certain timeout.
func TestAdmissionRejectsDoomedRequests(t *testing.T) {
	gs := &gatedSolver{name: "gated", release: make(chan struct{})}
	s, ts := newTestServer(t, serve.Config{
		Solvers:        map[string]solve.Solver{"gated": gs},
		DefaultBackend: "gated",
		MaxInFlight:    1,
		RequestTimeout: 150 * time.Millisecond,
	})
	defer close(gs.release)

	// r1 holds the only slot until its deadline: a 504 that seeds the
	// occupancy estimator with a full-timeout hold.
	if status, _ := post(t, ts.URL+"/v1/query", thresholdEnvelope); status != http.StatusGatewayTimeout {
		t.Fatalf("blocked solve should time out with 504, got %d", status)
	}

	// r2 occupies the slot (and will also run to its deadline).
	done := make(chan int, 1)
	go func() {
		st, _ := post(t, ts.URL+"/v1/query", `{"kind": "threshold", "w": 10, "o": 10, "util": 0.1, "target_eff": 0.8, "seed": 2}`)
		done <- st
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().InFlight != 1 {
		if time.Now().After(deadline) {
			t.Fatal("r2 never occupied the limiter slot")
		}
		time.Sleep(time.Millisecond)
	}

	// r3 arrives with the slot taken and an estimated wait (~ one full
	// timeout) that exceeds its own deadline: rejected up front.
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(thresholdEnvelope))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("doomed request: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 must carry a Retry-After hint")
	}
	<-done

	st := s.Stats()
	if st.Rejected != 1 {
		t.Errorf("rejected %d, want 1", st.Rejected)
	}
	// The two deadline 504s count as errors; the rejection does not.
	if st.Errors != 2 {
		t.Errorf("errors %d, want 2 (the 429 must not count)", st.Errors)
	}
}

// TestPanicRecovery pins the never-crash contract: an injected solver panic
// costs one 500 (counted in Panics and Errors), the process and the
// listener survive, and panicking batch items fail alone.
func TestPanicRecovery(t *testing.T) {
	s, ts := newTestServer(t, serve.Config{
		Solvers:        map[string]solve.Solver{"gated": &gatedSolver{name: "gated"}},
		DefaultBackend: "gated",
		Fault:          fault.MustNew(fault.Spec{Seed: 1, SolvePanic: 1}),
	})

	status, payload := post(t, ts.URL+"/v1/query", thresholdEnvelope)
	if status != http.StatusInternalServerError {
		t.Fatalf("panicking solve: status %d (%v), want 500", status, payload)
	}
	if msg, _ := payload["error"].(string); !strings.Contains(msg, "panic") {
		t.Errorf("500 body should say what happened: %v", payload)
	}
	if st := s.Stats(); st.Panics != 1 || st.Errors != 1 {
		t.Errorf("after one panic: panics=%d errors=%d", st.Panics, st.Errors)
	}

	// The server is still alive and serving.
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatalf("server must survive a request panic: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panic: %d", resp.StatusCode)
	}

	// Batch items panic individually: the batch itself is 200, each item 500.
	batch := `[` + thresholdEnvelope + `, {"kind": "threshold", "w": 10, "o": 10, "util": 0.1, "target_eff": 0.8, "seed": 2}]`
	status, payload = post(t, ts.URL+"/v1/batch", batch)
	if status != http.StatusOK || payload["failed"] != float64(2) {
		t.Fatalf("panicking batch: status %d failed %v, want 200 with 2 failed items", status, payload["failed"])
	}
	for i, it := range payload["items"].([]any) {
		if item := it.(map[string]any); item["status"] != float64(http.StatusInternalServerError) {
			t.Errorf("item %d: %v, want per-item 500", i, item)
		}
	}
	if st := s.Stats(); st.Panics != 3 {
		t.Errorf("panics %d, want 3 (one query + two batch items)", st.Panics)
	}
	if st := s.Stats(); st.Chaos == nil || st.Chaos.SolvePanic != 3 {
		t.Errorf("chaos stats %+v, want 3 injected panics", st.Chaos)
	}
}

// TestShedToAnalytic pins degraded mode: with every slot busy and shedding
// opted in, a stochastic-backend query is answered by the analytic backend
// immediately, marked degraded and counted, instead of queueing.
func TestShedToAnalytic(t *testing.T) {
	an, err := solve.NewSolver(solve.BackendAnalytic, solve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gs := &gatedSolver{name: "gated", release: make(chan struct{})}
	s, ts := newTestServer(t, serve.Config{
		Solvers:        map[string]solve.Solver{"gated": gs, solve.BackendAnalytic: an},
		DefaultBackend: "gated",
		MaxInFlight:    1,
		ShedAnalytic:   true,
	})

	// Saturate the single slot with a blocked stochastic solve.
	first := make(chan int, 1)
	go func() {
		st, _ := post(t, ts.URL+"/v1/query", thresholdEnvelope)
		first <- st
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().InFlight != 1 {
		if time.Now().After(deadline) {
			t.Fatal("first query never occupied the slot")
		}
		time.Sleep(time.Millisecond)
	}

	status, payload := post(t, ts.URL+"/v1/query", `{"kind": "threshold", "w": 10, "o": 10, "util": 0.1, "target_eff": 0.8, "seed": 2}`)
	if status != http.StatusOK {
		t.Fatalf("shed query: status %d (%v)", status, payload)
	}
	if payload["degraded"] != true || payload["backend"] != solve.BackendAnalytic {
		t.Fatalf("shed query must be a degraded analytic answer: %v", payload)
	}
	if st := s.Stats(); st.Sheds != 1 {
		t.Errorf("sheds %d, want 1", st.Sheds)
	}

	close(gs.release)
	if st := <-first; st != http.StatusOK {
		t.Fatalf("the occupying query should finish normally, got %d", st)
	}
	// An un-saturated server never sheds.
	status, payload = post(t, ts.URL+"/v1/query", `{"kind": "threshold", "w": 10, "o": 10, "util": 0.1, "target_eff": 0.8, "seed": 3}`)
	if status != http.StatusOK || payload["degraded"] == true {
		t.Fatalf("idle server must not shed: status %d %v", status, payload)
	}
	if st := s.Stats(); st.Sheds != 1 {
		t.Errorf("sheds %d after idle query, want still 1", st.Sheds)
	}
}

// TestClusterChaosProperty is the chaos property test: a 3-node cluster
// whose every peer connection suffers seeded latency, errors, drops,
// corruption and trickle still answers every query correctly from every
// node, and never deadlocks. Seeds are pinned so CI failures reproduce.
func TestClusterChaosProperty(t *testing.T) {
	chaos := fault.Spec{
		Latency:    0.2,
		LatencyMin: time.Millisecond,
		LatencyMax: 5 * time.Millisecond,
		Error:      0.2,
		Drop:       0.1,
		Corrupt:    0.1,
		Trickle:    0.1,
	}
	for _, seed := range []int64{1, 7, 42, 1993} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			spec := chaos
			spec.Seed = seed
			nodes := newTestClusterNoWait(t, 3, withChaosTransport(spec),
				func(i int, pc *peer.Config, sc *serve.Config) {
					// Fast resilience cadence so breakers open, cool down and
					// readmit within the test, and hedges actually fire.
					pc.BreakerCooldown = 50 * time.Millisecond
					pc.RetryBaseDelay = time.Millisecond
					pc.HedgeDelay = 5 * time.Millisecond
				})

			const envelopes, rounds = 8, 3
			var wg sync.WaitGroup
			errs := make(chan error, envelopes*rounds*len(nodes))
			for r := 0; r < rounds; r++ {
				for e := 0; e < envelopes; e++ {
					for n := range nodes {
						wg.Add(1)
						go func(r, e, n int) {
							defer wg.Done()
							env := fmt.Sprintf(`{"kind": "threshold", "w": 10, "o": 10, "util": 0.1, "target_eff": 0.8, "seed": %d}`, e+1)
							status, payload := nodes[n].post(t, "/v1/query", env)
							if status != http.StatusOK {
								errs <- fmt.Errorf("round %d env %d node %d: status %d (%v)", r, e, n, status, payload)
								return
							}
							ans, _ := payload["answer"].(map[string]any)
							if ans["min_ratio"] != float64(7) {
								errs <- fmt.Errorf("round %d env %d node %d: wrong answer %v", r, e, n, payload["answer"])
							}
						}(r, e, n)
					}
				}
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
			// The run must actually have exercised the resilience machinery:
			// under these fault rates at least one fallback or retry happens.
			var resil int64
			for _, node := range nodes {
				st := node.cluster.Status()
				resil += st.Fallbacks + st.Retries + st.ForwardCorrupt + st.Hedges
			}
			if resil == 0 {
				t.Error("chaos run exercised no resilience path — faults not injected?")
			}
		})
	}
}
