package serve_test

import (
	"context"
	"net/http"
	"testing"
	"time"

	"feasim/internal/serve"
)

// shutdownServers drains the shared client transport's connection pool and
// then gracefully shuts down every server, in that order. The ordering is
// the point: concurrent test bursts make the shared http.DefaultTransport
// dial spare keep-alive connections that never carry a request, the server
// holds those in StateNew, and http.Server.Shutdown waits out its entire
// deadline on them. Dropping the client-side pool first lets every node
// drain instantly. Extracted here because both the cluster suite and the
// resilience suite hit the same gotcha independently.
func shutdownServers(t testing.TB, srvs ...*serve.Server) {
	t.Helper()
	http.DefaultTransport.(*http.Transport).CloseIdleConnections()
	for _, srv := range srvs {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		// Tolerate servers a test already shut down itself (e.g. a killed
		// "home" node): double shutdown is harmless here.
		if err := srv.Shutdown(ctx); err != nil {
			t.Logf("shutdown: %v", err)
		}
		cancel()
	}
}
