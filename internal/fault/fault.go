// Package fault is a deterministic fault-injection layer for the serving
// tier. An Injector built from a seeded Spec wraps the peer transport
// (http.RoundTripper) and the solver backends, and flips a seeded coin per
// request/solve to inject latency, hard errors, connection drops, corrupt
// 200 bodies, slow-trickle responses, solver errors, and solver panics.
//
// Two properties are load-bearing:
//
//   - Deterministic: all randomness comes from one mutex-guarded rand.Rand
//     seeded by Spec.Seed, so a chaos test pins its seeds and replays the
//     same fault schedule on every run.
//   - Off by default: a nil *Injector (or an all-zero Spec) injects nothing
//     and wrapping becomes the identity, so production wiring can pass the
//     injector through unconditionally.
package fault

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"feasim/internal/solve"
)

// Spec configures an Injector. All probabilities are in [0, 1]; a zero value
// disables that fault. Transport faults apply per HTTP round trip, solver
// faults per Answer/Solve call.
type Spec struct {
	// Seed seeds the injector's private RNG. Zero is a valid seed.
	Seed int64

	// Latency is the probability of sleeping a uniform duration in
	// [LatencyMin, LatencyMax] before the round trip proceeds.
	Latency    float64
	LatencyMin time.Duration
	LatencyMax time.Duration

	// Error is the probability of failing the round trip outright, before
	// the request is sent (like a refused connection).
	Error float64

	// Drop is the probability of sending the request but discarding the
	// response and returning a transport error (a connection cut after the
	// request was delivered — the at-most-once hazard retries must tolerate).
	Drop float64

	// Corrupt is the probability of truncating and garbling the body of a
	// 200 response, so the payload no longer parses.
	Corrupt float64

	// Trickle is the probability of delivering the response body a few
	// bytes at a time with a delay per chunk (a straggler, not a failure).
	Trickle float64

	// SolveLatency is the probability of sleeping a uniform duration in
	// [SolveLatencyMin, SolveLatencyMax] before a wrapped solver answers.
	SolveLatency    float64
	SolveLatencyMin time.Duration
	SolveLatencyMax time.Duration

	// SolveError is the probability of a wrapped solver returning an
	// injected error instead of answering.
	SolveError float64

	// SolvePanic is the probability of a wrapped solver panicking
	// mid-answer.
	SolvePanic float64
}

// Default latency windows when a spec enables a latency fault without
// bounding it.
const (
	defaultLatencyMin = 1 * time.Millisecond
	defaultLatencyMax = 20 * time.Millisecond
)

// trickle delivery shape: small chunks with a fixed per-chunk delay.
const (
	trickleChunk = 64
	trickleDelay = 2 * time.Millisecond
)

// ErrInjected marks every error produced by the injector, so callers (and
// tests) can tell injected failures from real ones with errors.Is.
var ErrInjected = errors.New("fault: injected")

// Validate checks probability ranges and latency windows.
func (s Spec) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"latency", s.Latency}, {"error", s.Error}, {"drop", s.Drop},
		{"corrupt", s.Corrupt}, {"trickle", s.Trickle},
		{"solve-latency", s.SolveLatency}, {"solve-error", s.SolveError},
		{"solve-panic", s.SolvePanic},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("fault: %s probability %v outside [0,1]", p.name, p.v)
		}
	}
	if s.LatencyMin < 0 || s.LatencyMax < s.LatencyMin {
		return fmt.Errorf("fault: latency window [%v,%v] invalid", s.LatencyMin, s.LatencyMax)
	}
	if s.SolveLatencyMin < 0 || s.SolveLatencyMax < s.SolveLatencyMin {
		return fmt.Errorf("fault: solve-latency window [%v,%v] invalid", s.SolveLatencyMin, s.SolveLatencyMax)
	}
	return nil
}

// Enabled reports whether the spec injects anything at all.
func (s Spec) Enabled() bool {
	return s.Latency > 0 || s.Error > 0 || s.Drop > 0 || s.Corrupt > 0 ||
		s.Trickle > 0 || s.SolveLatency > 0 || s.SolveError > 0 || s.SolvePanic > 0
}

// ParseSpec parses the -chaos flag grammar: semicolon-separated key=value
// pairs. Probability keys take a bare float; latency keys take either a bare
// probability or "P:MIN-MAX" with Go durations.
//
//	seed=42;latency=0.3:1ms-20ms;error=0.2;drop=0.1;corrupt=0.1;trickle=0.1;
//	solve-latency=0.2:1ms-5ms;solve-error=0.1;solve-panic=0.01
func ParseSpec(text string) (Spec, error) {
	var s Spec
	s.LatencyMin, s.LatencyMax = defaultLatencyMin, defaultLatencyMax
	s.SolveLatencyMin, s.SolveLatencyMax = defaultLatencyMin, defaultLatencyMax
	for _, field := range strings.Split(text, ";") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, value, ok := strings.Cut(field, "=")
		if !ok {
			return Spec{}, fmt.Errorf("fault: %q is not key=value", field)
		}
		key, value = strings.TrimSpace(key), strings.TrimSpace(value)
		prob := func() (float64, error) {
			p, err := strconv.ParseFloat(value, 64)
			if err != nil {
				return 0, fmt.Errorf("fault: %s=%q: %v", key, value, err)
			}
			return p, nil
		}
		probWindow := func(min, max *time.Duration) (float64, error) {
			pv, rest, has := strings.Cut(value, ":")
			p, err := strconv.ParseFloat(pv, 64)
			if err != nil {
				return 0, fmt.Errorf("fault: %s=%q: %v", key, value, err)
			}
			if !has {
				return p, nil
			}
			lo, hi, ok := strings.Cut(rest, "-")
			if !ok {
				return 0, fmt.Errorf("fault: %s window %q is not MIN-MAX", key, rest)
			}
			if *min, err = time.ParseDuration(lo); err != nil {
				return 0, fmt.Errorf("fault: %s window: %v", key, err)
			}
			if *max, err = time.ParseDuration(hi); err != nil {
				return 0, fmt.Errorf("fault: %s window: %v", key, err)
			}
			return p, nil
		}
		var err error
		switch key {
		case "seed":
			s.Seed, err = strconv.ParseInt(value, 10, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("fault: seed=%q: %v", value, err)
			}
		case "latency":
			s.Latency, err = probWindow(&s.LatencyMin, &s.LatencyMax)
		case "error":
			s.Error, err = prob()
		case "drop":
			s.Drop, err = prob()
		case "corrupt":
			s.Corrupt, err = prob()
		case "trickle":
			s.Trickle, err = prob()
		case "solve-latency":
			s.SolveLatency, err = probWindow(&s.SolveLatencyMin, &s.SolveLatencyMax)
		case "solve-error":
			s.SolveError, err = prob()
		case "solve-panic":
			s.SolvePanic, err = prob()
		default:
			return Spec{}, fmt.Errorf("fault: unknown key %q", key)
		}
		if err != nil {
			return Spec{}, err
		}
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Stats counts injections by kind. All counters are monotonic.
type Stats struct {
	Requests   int64 `json:"requests"`
	Latencies  int64 `json:"latencies"`
	Errors     int64 `json:"errors"`
	Drops      int64 `json:"drops"`
	Corrupts   int64 `json:"corrupts"`
	Trickles   int64 `json:"trickles"`
	Solves     int64 `json:"solves"`
	SolveLat   int64 `json:"solve_latencies"`
	SolveErrs  int64 `json:"solve_errors"`
	SolvePanic int64 `json:"solve_panics"`
}

// Injector draws seeded faults per request/solve. Safe for concurrent use; a
// nil Injector injects nothing.
type Injector struct {
	spec Spec

	mu  sync.Mutex
	rng *rand.Rand

	requests, latencies, errs, drops, corrupts, trickles atomic.Int64
	solves, solveLat, solveErrs, solvePanics             atomic.Int64
}

// New builds an Injector from a validated spec.
func New(spec Spec) (*Injector, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.LatencyMax == 0 {
		spec.LatencyMin, spec.LatencyMax = defaultLatencyMin, defaultLatencyMax
	}
	if spec.SolveLatencyMax == 0 {
		spec.SolveLatencyMin, spec.SolveLatencyMax = defaultLatencyMin, defaultLatencyMax
	}
	return &Injector{spec: spec, rng: rand.New(rand.NewSource(spec.Seed))}, nil
}

// MustNew is New for specs known valid at compile time (tests).
func MustNew(spec Spec) *Injector {
	inj, err := New(spec)
	if err != nil {
		panic(err)
	}
	return inj
}

// Spec returns the injector's configuration.
func (i *Injector) Spec() Spec {
	if i == nil {
		return Spec{}
	}
	return i.spec
}

// Stats snapshots the injection counters.
func (i *Injector) Stats() Stats {
	if i == nil {
		return Stats{}
	}
	return Stats{
		Requests:   i.requests.Load(),
		Latencies:  i.latencies.Load(),
		Errors:     i.errs.Load(),
		Drops:      i.drops.Load(),
		Corrupts:   i.corrupts.Load(),
		Trickles:   i.trickles.Load(),
		Solves:     i.solves.Load(),
		SolveLat:   i.solveLat.Load(),
		SolveErrs:  i.solveErrs.Load(),
		SolvePanic: i.solvePanics.Load(),
	}
}

// draw flips one seeded coin.
func (i *Injector) draw(p float64) bool {
	if p <= 0 {
		return false
	}
	i.mu.Lock()
	hit := i.rng.Float64() < p
	i.mu.Unlock()
	return hit
}

// window draws one seeded duration in [min, max].
func (i *Injector) window(min, max time.Duration) time.Duration {
	if max <= min {
		return min
	}
	i.mu.Lock()
	d := min + time.Duration(i.rng.Int63n(int64(max-min)+1))
	i.mu.Unlock()
	return d
}

// sleep waits d or until ctx is done.
func sleep(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// Transport wraps an http.RoundTripper with transport-level faults. A nil
// injector returns base unchanged.
func (i *Injector) Transport(base http.RoundTripper) http.RoundTripper {
	if i == nil {
		return base
	}
	if base == nil {
		base = http.DefaultTransport
	}
	return &roundTripper{inj: i, base: base}
}

type roundTripper struct {
	inj  *Injector
	base http.RoundTripper
}

func (t *roundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	i := t.inj
	i.requests.Add(1)
	if i.draw(i.spec.Latency) {
		i.latencies.Add(1)
		sleep(req.Context(), i.window(i.spec.LatencyMin, i.spec.LatencyMax))
	}
	if i.draw(i.spec.Error) {
		i.errs.Add(1)
		return nil, fmt.Errorf("%w: transport error for %s", ErrInjected, req.URL.Path)
	}
	drop := i.draw(i.spec.Drop)
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if drop {
		// The request was delivered; the response is lost on the wire.
		i.drops.Add(1)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("%w: connection dropped for %s", ErrInjected, req.URL.Path)
	}
	if resp.StatusCode == http.StatusOK && i.draw(i.spec.Corrupt) {
		i.corrupts.Add(1)
		if err := corruptBody(resp); err != nil {
			return nil, err
		}
		return resp, nil
	}
	if i.draw(i.spec.Trickle) {
		i.trickles.Add(1)
		resp.Body = &trickleReader{ctx: req.Context(), inner: resp.Body}
	}
	return resp, nil
}

// corruptBody truncates the 200 body to half and garbles the first byte, so
// JSON payloads reliably fail to decode while the status stays 200.
func corruptBody(resp *http.Response) error {
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	cut := data[:len(data)/2]
	if len(cut) > 0 {
		cut[0] ^= 0xff
	}
	resp.Body = io.NopCloser(bytes.NewReader(cut))
	resp.ContentLength = int64(len(cut))
	resp.Header.Set("Content-Length", strconv.Itoa(len(cut)))
	return nil
}

// trickleReader delivers the body in trickleChunk-byte reads with a fixed
// delay per chunk, honouring the request context.
type trickleReader struct {
	ctx   context.Context
	inner io.ReadCloser
}

func (r *trickleReader) Read(p []byte) (int, error) {
	if err := r.ctx.Err(); err != nil {
		return 0, err
	}
	sleep(r.ctx, trickleDelay)
	if len(p) > trickleChunk {
		p = p[:trickleChunk]
	}
	return r.inner.Read(p)
}

func (r *trickleReader) Close() error { return r.inner.Close() }

// Solver wraps a solve.Solver with solver-level faults. A nil injector
// returns inner unchanged.
func (i *Injector) Solver(inner solve.Solver) solve.Solver {
	if i == nil {
		return inner
	}
	return &faultSolver{inj: i, inner: inner}
}

type faultSolver struct {
	inj   *Injector
	inner solve.Solver
}

func (s *faultSolver) Name() string           { return s.inner.Name() }
func (s *faultSolver) Capabilities() []string { return s.inner.Capabilities() }

func (s *faultSolver) inject(ctx context.Context) error {
	i := s.inj
	i.solves.Add(1)
	if i.draw(i.spec.SolveLatency) {
		i.solveLat.Add(1)
		sleep(ctx, i.window(i.spec.SolveLatencyMin, i.spec.SolveLatencyMax))
	}
	if i.draw(i.spec.SolvePanic) {
		i.solvePanics.Add(1)
		panic(fmt.Sprintf("fault: injected panic in %s backend", s.inner.Name()))
	}
	if i.draw(i.spec.SolveError) {
		i.solveErrs.Add(1)
		return fmt.Errorf("%w: solver error in %s backend", ErrInjected, s.inner.Name())
	}
	return nil
}

func (s *faultSolver) Answer(ctx context.Context, q solve.Query) (solve.Answer, error) {
	if err := s.inject(ctx); err != nil {
		return nil, err
	}
	return s.inner.Answer(ctx, q)
}

func (s *faultSolver) Solve(ctx context.Context, sc solve.Scenario) (solve.Report, error) {
	if err := s.inject(ctx); err != nil {
		return solve.Report{}, err
	}
	return s.inner.Solve(ctx, sc)
}
