package fault

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"feasim/internal/solve"
)

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec("seed=42; latency=0.3:2ms-8ms; error=0.2; drop=0.1; corrupt=0.15; trickle=0.05; solve-latency=0.25:1ms-4ms; solve-error=0.1; solve-panic=0.01")
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 42 || s.Latency != 0.3 || s.LatencyMin != 2*time.Millisecond ||
		s.LatencyMax != 8*time.Millisecond || s.Error != 0.2 || s.Drop != 0.1 ||
		s.Corrupt != 0.15 || s.Trickle != 0.05 || s.SolveLatency != 0.25 ||
		s.SolveLatencyMin != time.Millisecond || s.SolveLatencyMax != 4*time.Millisecond ||
		s.SolveError != 0.1 || s.SolvePanic != 0.01 {
		t.Fatalf("parsed spec %+v", s)
	}
	if !s.Enabled() {
		t.Fatal("spec should be enabled")
	}
	if s, err := ParseSpec(""); err != nil || s.Enabled() {
		t.Fatalf("empty spec: %+v, %v", s, err)
	}
	for _, bad := range []string{
		"nope", "mystery=1", "error=1.5", "error=x",
		"latency=0.5:9ms-2ms", "latency=0.5:abc", "seed=z",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestDeterministicSchedule(t *testing.T) {
	spec := Spec{Seed: 7, Error: 0.5}
	draw := func() []bool {
		inj := MustNew(spec)
		var out []bool
		for i := 0; i < 64; i++ {
			out = append(out, inj.draw(spec.Error))
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded schedules diverge at draw %d", i)
		}
	}
}

func TestTransportFaults(t *testing.T) {
	const body = `{"kind":"report","answer":{"speedup":2.5}}`
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	}))
	defer upstream.Close()

	get := func(inj *Injector) (*http.Response, error) {
		client := &http.Client{Transport: inj.Transport(http.DefaultTransport)}
		return client.Get(upstream.URL)
	}

	t.Run("error", func(t *testing.T) {
		inj := MustNew(Spec{Error: 1})
		_, err := get(inj)
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("want injected error, got %v", err)
		}
		if st := inj.Stats(); st.Errors != 1 || st.Requests != 1 {
			t.Fatalf("stats %+v", st)
		}
	})
	t.Run("drop", func(t *testing.T) {
		inj := MustNew(Spec{Drop: 1})
		if _, err := get(inj); err == nil {
			t.Fatal("want drop error")
		}
		if st := inj.Stats(); st.Drops != 1 {
			t.Fatalf("stats %+v", st)
		}
	})
	t.Run("corrupt", func(t *testing.T) {
		inj := MustNew(Spec{Corrupt: 1})
		resp, err := get(inj)
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if string(data) == body || len(data) >= len(body) {
			t.Fatalf("body not corrupted: %q", data)
		}
		if _, perr := solve.ParseAnswer("report", data); perr == nil {
			t.Fatal("corrupted body still parsed")
		}
		if st := inj.Stats(); st.Corrupts != 1 {
			t.Fatalf("stats %+v", st)
		}
	})
	t.Run("trickle", func(t *testing.T) {
		inj := MustNew(Spec{Trickle: 1})
		resp, err := get(inj)
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || string(data) != body {
			t.Fatalf("trickled body mismatch: %q, %v", data, err)
		}
		if st := inj.Stats(); st.Trickles != 1 {
			t.Fatalf("stats %+v", st)
		}
	})
	t.Run("latency", func(t *testing.T) {
		inj := MustNew(Spec{Latency: 1, LatencyMin: 5 * time.Millisecond, LatencyMax: 5 * time.Millisecond})
		start := time.Now()
		resp, err := get(inj)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if d := time.Since(start); d < 5*time.Millisecond {
			t.Fatalf("no latency injected (%v)", d)
		}
		if st := inj.Stats(); st.Latencies != 1 {
			t.Fatalf("stats %+v", st)
		}
	})
	t.Run("nil injector is identity", func(t *testing.T) {
		var inj *Injector
		if rt := inj.Transport(http.DefaultTransport); rt != http.DefaultTransport {
			t.Fatal("nil injector must return base transport")
		}
		if st := inj.Stats(); st != (Stats{}) {
			t.Fatalf("nil stats %+v", st)
		}
	})
}

// passSolver answers nothing but records that it was reached.
type passSolver struct{ reached int }

func (p *passSolver) Name() string           { return "pass" }
func (p *passSolver) Capabilities() []string { return solve.QueryKinds() }
func (p *passSolver) Answer(ctx context.Context, q solve.Query) (solve.Answer, error) {
	p.reached++
	return nil, nil
}
func (p *passSolver) Solve(ctx context.Context, s solve.Scenario) (solve.Report, error) {
	p.reached++
	return solve.Report{}, nil
}

func TestSolverFaults(t *testing.T) {
	t.Run("error", func(t *testing.T) {
		inner := &passSolver{}
		sv := MustNew(Spec{SolveError: 1}).Solver(inner)
		if _, err := sv.Answer(context.Background(), nil); !errors.Is(err, ErrInjected) {
			t.Fatalf("want injected error, got %v", err)
		}
		if inner.reached != 0 {
			t.Fatal("inner solver reached despite injected error")
		}
	})
	t.Run("panic", func(t *testing.T) {
		inj := MustNew(Spec{SolvePanic: 1})
		sv := inj.Solver(&passSolver{})
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("want injected panic")
				}
			}()
			sv.Answer(context.Background(), nil)
		}()
		if st := inj.Stats(); st.SolvePanic != 1 {
			t.Fatalf("stats %+v", st)
		}
	})
	t.Run("clean passthrough", func(t *testing.T) {
		inner := &passSolver{}
		sv := MustNew(Spec{}).Solver(inner)
		if _, err := sv.Answer(context.Background(), nil); err != nil {
			t.Fatal(err)
		}
		if inner.reached != 1 {
			t.Fatal("inner solver not reached")
		}
		var nilInj *Injector
		if got := nilInj.Solver(inner); got != solve.Solver(inner) {
			t.Fatal("nil injector must return inner solver")
		}
	})
}
