package stats

import (
	"fmt"
	"math"
)

// TimeWeighted accumulates the time average of a piecewise-constant signal
// — queue lengths, populations, busy counts. Observe(t, v) declares that
// the signal took value v starting at time t; Mean(t) integrates up to t.
type TimeWeighted struct {
	started  bool
	t0       float64 // first observation time
	lastT    float64
	lastV    float64
	integral float64
	min, max float64
}

// Observe records that the signal changed to v at time t. Times must be
// nondecreasing.
func (tw *TimeWeighted) Observe(t, v float64) {
	if !tw.started {
		tw.started = true
		tw.t0, tw.lastT, tw.lastV = t, t, v
		tw.min, tw.max = v, v
		return
	}
	if t < tw.lastT {
		panic(fmt.Sprintf("stats: time went backwards (%v after %v)", t, tw.lastT))
	}
	tw.integral += tw.lastV * (t - tw.lastT)
	tw.lastT, tw.lastV = t, v
	if v < tw.min {
		tw.min = v
	}
	if v > tw.max {
		tw.max = v
	}
}

// Mean returns the time average over [t0, t]. t must be at least the last
// observation time.
func (tw *TimeWeighted) Mean(t float64) float64 {
	if !tw.started || t <= tw.t0 {
		return 0
	}
	if t < tw.lastT {
		panic(fmt.Sprintf("stats: mean horizon %v before last observation %v", t, tw.lastT))
	}
	return (tw.integral + tw.lastV*(t-tw.lastT)) / (t - tw.t0)
}

// Current returns the signal's current value.
func (tw *TimeWeighted) Current() float64 { return tw.lastV }

// Min and Max return the observed extremes (0 when empty).
func (tw *TimeWeighted) Min() float64 {
	if !tw.started {
		return 0
	}
	return tw.min
}

// Max returns the maximum observed value (0 when empty).
func (tw *TimeWeighted) Max() float64 {
	if !tw.started {
		return 0
	}
	return tw.max
}

// Started reports whether any observation has been recorded.
func (tw *TimeWeighted) Started() bool { return tw.started }

// Integral returns the accumulated ∫v dt up to the last observation.
func (tw *TimeWeighted) Integral() float64 { return tw.integral }

// Variance returns the time-weighted variance over [t0, t] using the
// two-pass-free identity E[v²] − E[v]² on the stored integral of v only is
// not possible; TimeWeightedVar tracks the squared signal as well.
type TimeWeightedVar struct {
	val TimeWeighted
	sq  TimeWeighted
}

// Observe records a change to v at time t.
func (tv *TimeWeightedVar) Observe(t, v float64) {
	tv.val.Observe(t, v)
	tv.sq.Observe(t, v*v)
}

// Mean returns the time-average value at horizon t.
func (tv *TimeWeightedVar) Mean(t float64) float64 { return tv.val.Mean(t) }

// Variance returns the time-weighted variance at horizon t.
func (tv *TimeWeightedVar) Variance(t float64) float64 {
	m := tv.val.Mean(t)
	v := tv.sq.Mean(t) - m*m
	if v < 0 {
		v = 0
	}
	return v
}

// StdDev returns the time-weighted standard deviation at horizon t.
func (tv *TimeWeightedVar) StdDev(t float64) float64 { return math.Sqrt(tv.Variance(t)) }
