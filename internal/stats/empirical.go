package stats

import "math"

// EmpiricalQuantile returns the q-quantile of sorted (ascending) data via
// the inverse empirical CDF: the smallest x with F̂(x) >= q, i.e.
// sorted[ceil(q·n)-1]. It panics when the slice is empty or q is outside
// (0,1]. This is the estimator the simulation backends use to answer
// completion-time distribution queries from raw job samples.
func EmpiricalQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: EmpiricalQuantile on empty sample")
	}
	if q <= 0 || q > 1 {
		panic("stats: EmpiricalQuantile requires 0 < q <= 1")
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
