package stats

import (
	"errors"
	"fmt"
	"math"
)

// BatchMeans implements the batch-means output-analysis method the paper
// uses (reference [4], Kobayashi 1978): the observation stream is split into
// fixed-size consecutive batches, each batch mean is treated as one
// (approximately independent) sample, and a Student-t interval is formed
// over the batch means. The paper runs 20 batches of 1000 samples and
// requires a relative 90% CI half-width of at most 1%.
type BatchMeans struct {
	batchSize int
	cur       Summary   // accumulates the in-progress batch
	means     []float64 // completed batch means
	all       Summary   // grand summary over every observation
}

// NewBatchMeans creates a collector with the given batch size.
func NewBatchMeans(batchSize int) *BatchMeans {
	if batchSize < 1 {
		panic("stats: batch size must be >= 1")
	}
	return &BatchMeans{batchSize: batchSize}
}

// Add appends one observation, closing a batch when it fills.
func (b *BatchMeans) Add(x float64) {
	b.all.Add(x)
	b.cur.Add(x)
	if int(b.cur.N()) == b.batchSize {
		b.means = append(b.means, b.cur.Mean())
		b.cur = Summary{}
	}
}

// Batches is the number of completed batches.
func (b *BatchMeans) Batches() int { return len(b.means) }

// BatchSize is the configured batch size.
func (b *BatchMeans) BatchSize() int { return b.batchSize }

// N is the total number of observations, including any partial batch.
func (b *BatchMeans) N() int64 { return b.all.N() }

// GrandMean is the mean over all observations.
func (b *BatchMeans) GrandMean() float64 { return b.all.Mean() }

// ErrTooFewBatches is returned when a CI is requested before at least two
// batches have completed.
var ErrTooFewBatches = errors.New("stats: need at least 2 completed batches")

// MeanCI forms the batch-means confidence interval at the given level.
// Only completed batches participate; the partial batch is excluded so the
// batch means are identically distributed.
func (b *BatchMeans) MeanCI(level float64) (CI, error) {
	k := len(b.means)
	if k < 2 {
		return CI{}, ErrTooFewBatches
	}
	var s Summary
	s.AddAll(b.means)
	t := TQuantile(0.5+level/2, float64(k-1))
	return CI{Mean: s.Mean(), HalfWidth: t * s.StdDev() / math.Sqrt(float64(k)), Level: level}, nil
}

// LagOneAutocorrelation estimates the lag-1 autocorrelation of the batch
// means. Values near zero support the independence assumption that batch
// means rest on; large positive values mean the batch size is too small.
func (b *BatchMeans) LagOneAutocorrelation() float64 {
	k := len(b.means)
	if k < 3 {
		return 0
	}
	var s Summary
	s.AddAll(b.means)
	m := s.Mean()
	var num, den float64
	for i := 0; i < k; i++ {
		d := b.means[i] - m
		den += d * d
		if i+1 < k {
			num += d * (b.means[i+1] - m)
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

func (b *BatchMeans) String() string {
	return fmt.Sprintf("batches=%d size=%d grand-mean=%.6g", len(b.means), b.batchSize, b.GrandMean())
}

// RunToPrecision drives a sample generator until the batch-means CI at the
// given level has relative half-width at most rel, with the given batch size
// and a minimum number of batches (the paper's protocol is minBatches=20,
// batchSize=1000, level=0.90, rel=0.01). maxSamples bounds the run; if the
// bound is hit the best available CI is returned along with ok=false.
func RunToPrecision(gen func() float64, batchSize, minBatches int, level, rel float64, maxSamples int64) (CI, *BatchMeans, bool) {
	bm := NewBatchMeans(batchSize)
	var n int64
	for {
		for i := 0; i < batchSize; i++ {
			bm.Add(gen())
		}
		n += int64(batchSize)
		if bm.Batches() >= minBatches {
			ci, err := bm.MeanCI(level)
			if err == nil && ci.Relative() <= rel {
				return ci, bm, true
			}
			if n >= maxSamples {
				return ci, bm, false
			}
		} else if n >= maxSamples {
			ci, _ := bm.MeanCI(level)
			return ci, bm, false
		}
	}
}
