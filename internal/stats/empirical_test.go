package stats

import "testing"

func TestEmpiricalQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		q    float64
		want float64
	}{
		{0.1, 1},   // ceil(0.1*10)=1 → first element
		{0.5, 5},   // median of 10 by inverse CDF
		{0.55, 6},  // ceil(5.5)=6
		{0.9, 9},   // ceil(9)=9
		{0.95, 10}, // ceil(9.5)=10
		{1, 10},    // max
	}
	for _, c := range cases {
		if got := EmpiricalQuantile(xs, c.q); got != c.want {
			t.Errorf("quantile %g = %g, want %g", c.q, got, c.want)
		}
	}
	if got := EmpiricalQuantile([]float64{42}, 0.5); got != 42 {
		t.Errorf("single sample quantile = %g, want 42", got)
	}
}

func TestEmpiricalQuantilePanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		f()
	}
	expectPanic("empty", func() { EmpiricalQuantile(nil, 0.5) })
	expectPanic("q=0", func() { EmpiricalQuantile([]float64{1}, 0) })
	expectPanic("q>1", func() { EmpiricalQuantile([]float64{1}, 1.5) })
}
