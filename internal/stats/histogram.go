package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-bin histogram over [Lo, Hi) with underflow and
// overflow buckets. It is used by the experiment harness to characterize
// task-time distributions beyond their means.
type Histogram struct {
	Lo, Hi   float64
	bins     []int64
	under    int64
	over     int64
	observed Summary
}

// NewHistogram creates a histogram with n equal-width bins spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n < 1 || !(hi > lo) {
		panic("stats: histogram needs hi > lo and n >= 1")
	}
	return &Histogram{Lo: lo, Hi: hi, bins: make([]int64, n)}
}

// Add records an observation.
func (h *Histogram) Add(x float64) {
	h.observed.Add(x)
	switch {
	case x < h.Lo:
		h.under++
	case x >= h.Hi:
		h.over++
	default:
		i := int(float64(len(h.bins)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i == len(h.bins) { // x == Hi - epsilon rounding guard
			i--
		}
		h.bins[i]++
	}
}

// Count returns the number of observations in bin i.
func (h *Histogram) Count(i int) int64 { return h.bins[i] }

// Bins returns the number of interior bins.
func (h *Histogram) Bins() int { return len(h.bins) }

// Under and Over return the outlier counts.
func (h *Histogram) Under() int64 { return h.under }

// Over returns the count of observations at or above Hi.
func (h *Histogram) Over() int64 { return h.over }

// N is the total number of observations, outliers included.
func (h *Histogram) N() int64 { return h.observed.N() }

// Summary exposes the running summary of all observations.
func (h *Histogram) Summary() Summary { return h.observed }

// Quantile returns an estimate of the q-quantile by linear interpolation
// within bins. Outlier buckets clamp to the range endpoints.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 || q > 1 {
		panic("stats: quantile requires 0 <= q <= 1")
	}
	total := h.N()
	if total == 0 {
		return math.NaN()
	}
	target := q * float64(total)
	cum := float64(h.under)
	if target <= cum {
		return h.Lo
	}
	width := (h.Hi - h.Lo) / float64(len(h.bins))
	for i, c := range h.bins {
		if cum+float64(c) >= target && c > 0 {
			frac := (target - cum) / float64(c)
			return h.Lo + width*(float64(i)+frac)
		}
		cum += float64(c)
	}
	return h.Hi
}

// Render draws a simple horizontal bar chart, maxWidth characters wide.
func (h *Histogram) Render(maxWidth int) string {
	var peak int64 = 1
	for _, c := range h.bins {
		if c > peak {
			peak = c
		}
	}
	var sb strings.Builder
	width := (h.Hi - h.Lo) / float64(len(h.bins))
	for i, c := range h.bins {
		bar := int(float64(c) / float64(peak) * float64(maxWidth))
		fmt.Fprintf(&sb, "[%10.3f, %10.3f) %8d %s\n",
			h.Lo+width*float64(i), h.Lo+width*float64(i+1), c, strings.Repeat("#", bar))
	}
	if h.under > 0 {
		fmt.Fprintf(&sb, "underflow: %d\n", h.under)
	}
	if h.over > 0 {
		fmt.Fprintf(&sb, "overflow: %d\n", h.over)
	}
	return sb.String()
}
