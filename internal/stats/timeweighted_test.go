package stats

import (
	"math"
	"testing"
)

func TestTimeWeightedMean(t *testing.T) {
	var tw TimeWeighted
	if tw.Started() || tw.Mean(10) != 0 {
		t.Error("empty accumulator should report 0")
	}
	tw.Observe(0, 2)  // 2 on [0,5)
	tw.Observe(5, 4)  // 4 on [5,10)
	tw.Observe(10, 0) // 0 on [10,20)
	// Mean over [0,20] = (2*5 + 4*5 + 0*10)/20 = 1.5.
	if got := tw.Mean(20); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("mean = %v, want 1.5", got)
	}
	if tw.Min() != 0 || tw.Max() != 4 {
		t.Errorf("min/max = %v/%v", tw.Min(), tw.Max())
	}
	if tw.Current() != 0 {
		t.Errorf("current = %v", tw.Current())
	}
}

func TestTimeWeightedNonZeroStart(t *testing.T) {
	var tw TimeWeighted
	tw.Observe(100, 7)
	tw.Observe(110, 0)
	// Mean over [100,120] = (7*10)/20 = 3.5.
	if got := tw.Mean(120); math.Abs(got-3.5) > 1e-12 {
		t.Errorf("mean = %v, want 3.5", got)
	}
	if got := tw.Integral(); math.Abs(got-70) > 1e-12 {
		t.Errorf("integral = %v, want 70", got)
	}
}

func TestTimeWeightedPanicsOnBackwardsTime(t *testing.T) {
	var tw TimeWeighted
	tw.Observe(5, 1)
	defer func() {
		if recover() == nil {
			t.Error("backwards observation should panic")
		}
	}()
	tw.Observe(4, 2)
}

func TestTimeWeightedPanicsOnEarlyMean(t *testing.T) {
	var tw TimeWeighted
	tw.Observe(0, 1)
	tw.Observe(10, 2)
	defer func() {
		if recover() == nil {
			t.Error("mean before last observation should panic")
		}
	}()
	tw.Mean(5)
}

func TestTimeWeightedVar(t *testing.T) {
	var tv TimeWeightedVar
	// Signal 0 half the time, 2 the other half: mean 1, variance 1.
	tv.Observe(0, 0)
	tv.Observe(10, 2)
	if got := tv.Mean(20); math.Abs(got-1) > 1e-12 {
		t.Errorf("mean = %v", got)
	}
	if got := tv.Variance(20); math.Abs(got-1) > 1e-12 {
		t.Errorf("variance = %v", got)
	}
	if got := tv.StdDev(20); math.Abs(got-1) > 1e-12 {
		t.Errorf("stddev = %v", got)
	}
	// Constant signal: zero variance even with float noise guarded.
	var cv TimeWeightedVar
	cv.Observe(0, 3)
	cv.Observe(7, 3)
	if got := cv.Variance(14); got != 0 {
		t.Errorf("constant variance = %v", got)
	}
}
