package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Variance() != 0 {
		t.Fatal("zero-value summary should be empty")
	}
	s.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if !almost(s.Mean(), 5, 1e-12) {
		t.Errorf("mean = %v, want 5", s.Mean())
	}
	// Population variance is 4; unbiased sample variance is 32/7.
	if !almost(s.Variance(), 32.0/7, 1e-12) {
		t.Errorf("variance = %v, want %v", s.Variance(), 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	if s.String() == "" {
		t.Error("String should be non-empty")
	}
}

func TestSummarySingleObservation(t *testing.T) {
	var s Summary
	s.Add(3.5)
	if s.Variance() != 0 || s.StdDev() != 0 {
		t.Error("variance of one observation must be 0")
	}
	if s.Min() != 3.5 || s.Max() != 3.5 {
		t.Error("min/max of single observation")
	}
}

func TestSummaryMergeMatchesSequential(t *testing.T) {
	f := func(xs []float64, split uint8) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				return true // skip pathological inputs
			}
		}
		var whole Summary
		whole.AddAll(xs)
		k := 0
		if len(xs) > 0 {
			k = int(split) % (len(xs) + 1)
		}
		var a, b Summary
		a.AddAll(xs[:k])
		b.AddAll(xs[k:])
		a.Merge(b)
		return a.N() == whole.N() &&
			almost(a.Mean(), whole.Mean(), 1e-8*(1+math.Abs(whole.Mean()))) &&
			almost(a.Variance(), whole.Variance(), 1e-6*(1+whole.Variance())) &&
			a.Min() == whole.Min() && a.Max() == whole.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSummaryMergeEmpty(t *testing.T) {
	var a, b Summary
	a.Add(1)
	a.Add(3)
	before := a
	a.Merge(b) // merging empty is a no-op
	if a != before {
		t.Error("merge with empty changed summary")
	}
	b.Merge(a) // merging into empty copies
	if b.N() != 2 || b.Mean() != 2 {
		t.Error("merge into empty failed")
	}
}

func TestSummaryMeanCI(t *testing.T) {
	var s Summary
	for i := 0; i < 100; i++ {
		s.Add(float64(i % 10)) // mean 4.5
	}
	ci := s.MeanCI(0.95)
	if !ci.Contains(4.5) {
		t.Errorf("CI %v should contain 4.5", ci)
	}
	if ci.Lo() >= ci.Hi() {
		t.Error("CI endpoints inverted")
	}
	var one Summary
	one.Add(5)
	if ci := one.MeanCI(0.9); !math.IsInf(ci.HalfWidth, 1) {
		t.Error("CI with one sample should have infinite half-width")
	}
}

func TestCIHelpers(t *testing.T) {
	ci := CI{Mean: 10, HalfWidth: 1, Level: 0.9}
	if ci.Lo() != 9 || ci.Hi() != 11 {
		t.Error("Lo/Hi wrong")
	}
	if !ci.Contains(9) || !ci.Contains(11) || ci.Contains(8.999) {
		t.Error("Contains wrong at boundaries")
	}
	if !almost(ci.Relative(), 0.1, 1e-12) {
		t.Errorf("Relative = %v", ci.Relative())
	}
	zero := CI{}
	if zero.Relative() != 0 {
		t.Error("zero CI should have zero relative width")
	}
	if r := (CI{Mean: 0, HalfWidth: 1}).Relative(); !math.IsInf(r, 1) {
		t.Error("zero-mean nonzero-width CI should be infinite relative")
	}
	if ci.String() == "" {
		t.Error("String empty")
	}
}

func TestHistogramCountsAndQuantiles(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i) / 10) // 0.0 .. 9.9 uniformly
	}
	if h.N() != 100 {
		t.Fatalf("N = %d", h.N())
	}
	for i := 0; i < 10; i++ {
		if h.Count(i) != 10 {
			t.Errorf("bin %d count = %d, want 10", i, h.Count(i))
		}
	}
	med := h.Quantile(0.5)
	if med < 4 || med > 6 {
		t.Errorf("median estimate %v not near 5", med)
	}
	if h.Render(40) == "" {
		t.Error("Render empty")
	}
}

func TestHistogramOutliers(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(-1)
	h.Add(10)
	h.Add(15)
	h.Add(5)
	if h.Under() != 1 || h.Over() != 2 {
		t.Errorf("under/over = %d/%d", h.Under(), h.Over())
	}
	if h.N() != 4 {
		t.Errorf("N = %d", h.N())
	}
	if h.Bins() != 5 {
		t.Errorf("Bins = %d", h.Bins())
	}
	if got := h.Summary().Max(); got != 15 {
		t.Errorf("summary max = %v", got)
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("quantile of empty histogram should be NaN")
	}
	h.Add(0.5)
	if q := h.Quantile(0); q != 0 {
		t.Errorf("q0 = %v", q)
	}
	if q := h.Quantile(1); q < 0.5 || q > 1 {
		t.Errorf("q1 = %v", q)
	}
	defer func() {
		if recover() == nil {
			t.Error("quantile outside [0,1] should panic")
		}
	}()
	h.Quantile(1.5)
}

func TestHistogramPanicsOnBadConstruction(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHistogram with hi <= lo should panic")
		}
	}()
	NewHistogram(1, 1, 4)
}
