// Package stats provides the statistical machinery the paper's simulation
// study relies on: running summary accumulators, histograms, Student-t
// quantiles, and the batch-means confidence-interval method (Kobayashi,
// "Modeling and Analysis", 1978 — the paper's reference [4]) with which the
// paper reports "confidence intervals of 1 percent or less at a 90 percent
// confidence level ... 20 batches per simulation run and a batch size of
// 1000 samples".
package stats

import (
	"fmt"
	"math"
)

// Summary is a single-pass accumulator of count, mean, variance (Welford),
// minimum and maximum. The zero value is ready to use.
type Summary struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add accumulates one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// AddAll accumulates a batch of observations.
func (s *Summary) AddAll(xs []float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

// Merge folds another summary into s (parallel reduction). Min/max, count,
// mean and variance are all combined exactly (Chan et al. pairwise update).
func (s *Summary) Merge(o Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	n := s.n + o.n
	d := o.mean - s.mean
	s.m2 += o.m2 + d*d*float64(s.n)*float64(o.n)/float64(n)
	s.mean += d * float64(o.n) / float64(n)
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n = n
}

// N is the number of observations.
func (s Summary) N() int64 { return s.n }

// Mean is the sample mean (0 when empty).
func (s Summary) Mean() float64 { return s.mean }

// Variance is the unbiased sample variance (0 when n < 2).
func (s Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev is the unbiased sample standard deviation.
func (s Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min is the minimum observation (0 when empty).
func (s Summary) Min() float64 { return s.min }

// Max is the maximum observation (0 when empty).
func (s Summary) Max() float64 { return s.max }

// StdErr is the standard error of the mean.
func (s Summary) StdErr() float64 {
	if s.n < 1 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.6g sd=%.6g min=%.6g max=%.6g",
		s.n, s.Mean(), s.StdDev(), s.min, s.max)
}

// CI is a two-sided confidence interval around a point estimate.
type CI struct {
	Mean      float64 // point estimate
	HalfWidth float64 // half-width of the interval
	Level     float64 // confidence level, e.g. 0.90
}

// Lo is the lower endpoint.
func (c CI) Lo() float64 { return c.Mean - c.HalfWidth }

// Hi is the upper endpoint.
func (c CI) Hi() float64 { return c.Mean + c.HalfWidth }

// Relative is the half-width as a fraction of the mean (∞ for a zero mean
// with nonzero half-width; 0 when both are zero).
func (c CI) Relative() float64 {
	if c.Mean == 0 {
		if c.HalfWidth == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(c.HalfWidth / c.Mean)
}

// Contains reports whether v lies inside the interval.
func (c CI) Contains(v float64) bool { return v >= c.Lo() && v <= c.Hi() }

func (c CI) String() string {
	return fmt.Sprintf("%.6g ± %.3g (%.0f%%)", c.Mean, c.HalfWidth, c.Level*100)
}

// MeanCI builds a Student-t confidence interval for the mean of the
// accumulated observations at the given confidence level.
func (s Summary) MeanCI(level float64) CI {
	if s.n < 2 {
		return CI{Mean: s.Mean(), HalfWidth: math.Inf(1), Level: level}
	}
	t := TQuantile(0.5+level/2, float64(s.n-1))
	return CI{Mean: s.Mean(), HalfWidth: t * s.StdErr(), Level: level}
}
