package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestBatchMeansCounts(t *testing.T) {
	bm := NewBatchMeans(10)
	for i := 0; i < 95; i++ {
		bm.Add(float64(i))
	}
	if bm.Batches() != 9 {
		t.Errorf("Batches = %d, want 9 (partial batch excluded)", bm.Batches())
	}
	if bm.N() != 95 {
		t.Errorf("N = %d", bm.N())
	}
	if bm.BatchSize() != 10 {
		t.Errorf("BatchSize = %d", bm.BatchSize())
	}
	if got, want := bm.GrandMean(), 47.0; got != want {
		t.Errorf("GrandMean = %v, want %v", got, want)
	}
	if bm.String() == "" {
		t.Error("String empty")
	}
}

func TestBatchMeansTooFewBatches(t *testing.T) {
	bm := NewBatchMeans(100)
	for i := 0; i < 150; i++ {
		bm.Add(1)
	}
	if _, err := bm.MeanCI(0.9); err != ErrTooFewBatches {
		t.Errorf("expected ErrTooFewBatches, got %v", err)
	}
}

func TestBatchMeansCIContainsTrueMean(t *testing.T) {
	// iid uniform(0,1) samples: true mean 0.5. With the paper's protocol
	// (20 batches of 1000) the CI should be tight and almost surely contain
	// the truth at this seed.
	r := rand.New(rand.NewPCG(1, 2))
	bm := NewBatchMeans(1000)
	for i := 0; i < 20000; i++ {
		bm.Add(r.Float64())
	}
	ci, err := bm.MeanCI(0.90)
	if err != nil {
		t.Fatal(err)
	}
	if !ci.Contains(0.5) {
		t.Errorf("CI %v misses true mean 0.5", ci)
	}
	if ci.Relative() > 0.01 {
		t.Errorf("paper protocol should reach <=1%% relative width on uniform, got %v", ci.Relative())
	}
}

func TestBatchMeansCIWidthShrinks(t *testing.T) {
	gen := func(n int) CI {
		r := rand.New(rand.NewPCG(7, 9))
		bm := NewBatchMeans(n / 20)
		for i := 0; i < n; i++ {
			bm.Add(r.NormFloat64())
		}
		ci, err := bm.MeanCI(0.9)
		if err != nil {
			t.Fatal(err)
		}
		return ci
	}
	small := gen(2000)
	big := gen(200000)
	// Half-width should shrink roughly like 1/sqrt(n); require at least 4x
	// for a 100x sample increase.
	if big.HalfWidth*4 > small.HalfWidth {
		t.Errorf("half-width did not shrink: %v -> %v", small.HalfWidth, big.HalfWidth)
	}
}

func TestLagOneAutocorrelation(t *testing.T) {
	// iid samples: batch means nearly uncorrelated.
	r := rand.New(rand.NewPCG(3, 4))
	bm := NewBatchMeans(50)
	for i := 0; i < 50*100; i++ {
		bm.Add(r.Float64())
	}
	if ac := bm.LagOneAutocorrelation(); math.Abs(ac) > 0.3 {
		t.Errorf("iid lag-1 autocorrelation suspiciously large: %v", ac)
	}
	// A strongly trending sequence: batch means heavily correlated.
	bt := NewBatchMeans(10)
	for i := 0; i < 1000; i++ {
		bt.Add(float64(i))
	}
	if ac := bt.LagOneAutocorrelation(); ac < 0.5 {
		t.Errorf("trending sequence should show strong autocorrelation, got %v", ac)
	}
	// Degenerate: fewer than 3 batches.
	b2 := NewBatchMeans(5)
	for i := 0; i < 10; i++ {
		b2.Add(1)
	}
	if b2.LagOneAutocorrelation() != 0 {
		t.Error("autocorrelation with <3 batches should be 0")
	}
}

func TestRunToPrecisionReachesTarget(t *testing.T) {
	r := rand.New(rand.NewPCG(11, 13))
	gen := func() float64 { return 10 + r.Float64() } // mean 10.5, tiny variance
	ci, bm, ok := RunToPrecision(gen, 100, 5, 0.90, 0.01, 1_000_000)
	if !ok {
		t.Fatal("precision target should be reachable")
	}
	if !ci.Contains(10.5) {
		t.Errorf("CI %v misses 10.5", ci)
	}
	if bm.Batches() < 5 {
		t.Errorf("minBatches not honoured: %d", bm.Batches())
	}
	if ci.Relative() > 0.01 {
		t.Errorf("relative width %v above target", ci.Relative())
	}
}

func TestRunToPrecisionHitsSampleBound(t *testing.T) {
	// Enormous variance relative to mean: cannot reach 0.0001% in 10k samples.
	r := rand.New(rand.NewPCG(17, 19))
	gen := func() float64 { return r.NormFloat64() * 1e6 }
	_, bm, ok := RunToPrecision(gen, 100, 5, 0.90, 1e-6, 10_000)
	if ok {
		t.Error("should not reach precision")
	}
	if bm.N() < 10_000 {
		t.Errorf("should have used the full budget, used %d", bm.N())
	}
}

func TestNewBatchMeansPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("batch size 0 should panic")
		}
	}()
	NewBatchMeans(0)
}
