package stats

import (
	"math"
	"testing"
)

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.8413447460685429, 1}, // Phi(1)
		{0.975, 1.959963984540054},
		{0.95, 1.6448536269514722},
		{0.99, 2.3263478740408408},
		{0.005, -2.575829303548901},
		{0.25, -0.6744897501960817},
	}
	for _, c := range cases {
		got := NormalQuantile(c.p)
		if math.Abs(got-c.want) > 5e-8 {
			t.Errorf("NormalQuantile(%v) = %.10f, want %.10f", c.p, got, c.want)
		}
	}
}

func TestNormalQuantilePanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NormalQuantile(%v) should panic", p)
				}
			}()
			NormalQuantile(p)
		}()
	}
}

func TestTQuantileKnownValues(t *testing.T) {
	// Reference values from standard t tables (two-sided).
	cases := []struct {
		p, df, want float64
	}{
		{0.975, 1, 12.706204736},
		{0.975, 2, 4.302652730},
		{0.975, 5, 2.570581836},
		{0.975, 10, 2.228138852},
		{0.975, 30, 2.042272456},
		{0.95, 5, 2.015048373},
		{0.95, 19, 1.729132812}, // paper protocol: 20 batches, 90% level
		{0.95, 120, 1.657650899},
		{0.995, 10, 3.169272667},
		{0.9, 3, 1.637744352},
	}
	for _, c := range cases {
		got := TQuantile(c.p, c.df)
		if math.Abs(got-c.want) > 2e-6*c.want {
			t.Errorf("TQuantile(%v, %v) = %.9f, want %.9f", c.p, c.df, got, c.want)
		}
	}
}

func TestTQuantileSymmetry(t *testing.T) {
	for _, df := range []float64{1, 2, 7, 23, 100} {
		for _, p := range []float64{0.6, 0.9, 0.99} {
			up := TQuantile(p, df)
			dn := TQuantile(1-p, df)
			if math.Abs(up+dn) > 1e-9*(1+math.Abs(up)) {
				t.Errorf("df=%v p=%v: asymmetric quantiles %v vs %v", df, p, up, dn)
			}
		}
	}
	if TQuantile(0.5, 7) != 0 {
		t.Error("median of t must be 0")
	}
}

func TestTQuantileApproachesNormal(t *testing.T) {
	for _, p := range []float64{0.9, 0.975, 0.995} {
		tq := TQuantile(p, 1e6)
		nq := NormalQuantile(p)
		if math.Abs(tq-nq) > 1e-4 {
			t.Errorf("p=%v: t(df=1e6)=%v vs normal %v", p, tq, nq)
		}
	}
}

func TestTQuantileRoundTripsThroughCDF(t *testing.T) {
	for _, df := range []float64{1, 2, 3, 8, 19, 240} {
		for _, p := range []float64{0.05, 0.2, 0.5, 0.8, 0.95, 0.999} {
			x := TQuantile(p, df)
			back := TCDF(x, df)
			if math.Abs(back-p) > 1e-8 {
				t.Errorf("df=%v: TCDF(TQuantile(%v)) = %v", df, p, back)
			}
		}
	}
}

func TestTQuantilePanics(t *testing.T) {
	for _, bad := range []struct{ p, df float64 }{{0, 5}, {1, 5}, {0.5, 0.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("TQuantile(%v,%v) should panic", bad.p, bad.df)
				}
			}()
			TQuantile(bad.p, bad.df)
		}()
	}
}

func TestRegIncBetaProperties(t *testing.T) {
	if RegIncBeta(2, 3, 0) != 0 || RegIncBeta(2, 3, 1) != 1 {
		t.Error("endpoints wrong")
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	for _, x := range []float64{0.1, 0.37, 0.5, 0.9} {
		l := RegIncBeta(2.5, 4, x)
		r := 1 - RegIncBeta(4, 2.5, 1-x)
		if math.Abs(l-r) > 1e-12 {
			t.Errorf("symmetry violated at x=%v: %v vs %v", x, l, r)
		}
	}
	// I_x(1,1) = x (uniform CDF).
	for _, x := range []float64{0.2, 0.6, 0.95} {
		if got := RegIncBeta(1, 1, x); math.Abs(got-x) > 1e-12 {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
	}
	// Monotone in x.
	prev := -1.0
	for x := 0.0; x <= 1.0; x += 0.05 {
		v := RegIncBeta(3, 7, x)
		if v < prev {
			t.Fatalf("RegIncBeta not monotone at x=%v", x)
		}
		prev = v
	}
}

func TestTCDFKnownValues(t *testing.T) {
	if got := TCDF(0, 5); got != 0.5 {
		t.Errorf("TCDF(0) = %v", got)
	}
	// t=1, df=1 is Cauchy: CDF = 1/2 + atan(1)/pi = 0.75.
	if got := TCDF(1, 1); math.Abs(got-0.75) > 1e-10 {
		t.Errorf("Cauchy CDF(1) = %v, want 0.75", got)
	}
	if got := TCDF(-1, 1); math.Abs(got-0.25) > 1e-10 {
		t.Errorf("Cauchy CDF(-1) = %v, want 0.25", got)
	}
}
