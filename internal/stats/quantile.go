package stats

import "math"

// NormalQuantile returns the p-quantile of the standard normal distribution
// using the Beasley-Springer-Moro rational approximation (absolute error
// below 3e-9 over (0,1)). It panics for p outside (0,1).
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("stats: NormalQuantile requires 0 < p < 1")
	}
	// Coefficients from Moro (1995).
	a := [4]float64{2.50662823884, -18.61500062529, 41.39119773534, -25.44106049637}
	b := [4]float64{-8.47351093090, 23.08336743743, -21.06224101826, 3.13082909833}
	c := [9]float64{
		0.3374754822726147, 0.9761690190917186, 0.1607979714918209,
		0.0276438810333863, 0.0038405729373609, 0.0003951896511919,
		0.0000321767881768, 0.0000002888167364, 0.0000003960315187,
	}
	y := p - 0.5
	if math.Abs(y) < 0.42 {
		r := y * y
		num := y * (((a[3]*r+a[2])*r+a[1])*r + a[0])
		den := (((b[3]*r+b[2])*r+b[1])*r+b[0])*r + 1
		return num / den
	}
	r := p
	if y > 0 {
		r = 1 - p
	}
	r = math.Log(-math.Log(r))
	x := c[0]
	pow := 1.0
	for i := 1; i < 9; i++ {
		pow *= r
		x += c[i] * pow
	}
	if y < 0 {
		x = -x
	}
	return x
}

// TQuantile returns the p-quantile of Student's t distribution with df
// degrees of freedom, via G. W. Hill's Algorithm 396 (CACM, 1970) with a
// Newton polish against the t CDF. Accuracy is ample for confidence
// intervals (relative error well under 1e-6 for df ≥ 1).
func TQuantile(p, df float64) float64 {
	if p <= 0 || p >= 1 {
		panic("stats: TQuantile requires 0 < p < 1")
	}
	if df < 1 {
		panic("stats: TQuantile requires df >= 1")
	}
	if p == 0.5 {
		return 0
	}
	sign := 1.0
	if p < 0.5 {
		sign = -1
		p = 1 - p
	}
	var x float64
	switch {
	case df == 1:
		// Exact: Cauchy quantile.
		x = math.Tan(math.Pi * (p - 0.5))
	case df == 2:
		// Exact closed form for df = 2.
		alpha := 2*p - 1
		x = alpha * math.Sqrt(2/(1-alpha*alpha))
	default:
		x = hill396(2*(1-p), df)
	}
	// Newton polish: solve F(x) = p using the t CDF.
	for i := 0; i < 4; i++ {
		f := TCDF(x, df) - p
		d := tPDF(x, df)
		if d <= 0 {
			break
		}
		step := f / d
		if math.Abs(step) < 1e-14*(1+math.Abs(x)) {
			break
		}
		x -= step
	}
	return sign * x
}

// hill396 is the core of Algorithm 396: upper-tail two-sided inverse,
// returning t with P(|T| > t) = q for df = n.
func hill396(q, n float64) float64 {
	a := 1 / (n - 0.5)
	b := 48 / (a * a)
	c := ((20700*a/b-98)*a-16)*a + 96.36
	d := ((94.5/(b+c)-3)/b + 1) * math.Sqrt(a*math.Pi/2) * n
	x := d * q
	y := math.Pow(x, 2/n)
	if y > 0.05+a {
		// Asymptotic inverse expansion about the normal.
		x = NormalQuantile(q / 2) // negative number
		y = x * x
		if n < 5 {
			c += 0.3 * (n - 4.5) * (x - 0.5)
		}
		c = (((0.05*d*x-5)*x-7)*x-2)*x + b + c
		y = (((((0.4*y+6.3)*y+36)*y+94.5)/c-y-3)/b + 1) * x
		y = a * y * y
		if y > 0.002 {
			y = math.Expm1(y)
		} else {
			y = 0.5*y*y + y
		}
	} else {
		y = ((1/(((n+6)/(n*y)-0.089*d-0.822)*(n+2)*3)+0.5/(n+4))*y - 1) * (n + 1) / (n + 2) / y
	}
	return math.Sqrt(n * y)
}

// TCDF is the cumulative distribution function of Student's t with df
// degrees of freedom, computed through the regularized incomplete beta
// function.
func TCDF(x, df float64) float64 {
	if x == 0 {
		return 0.5
	}
	ib := RegIncBeta(df/2, 0.5, df/(df+x*x))
	if x > 0 {
		return 1 - 0.5*ib
	}
	return 0.5 * ib
}

// tPDF is the density of Student's t with df degrees of freedom.
func tPDF(x, df float64) float64 {
	lg1, _ := math.Lgamma((df + 1) / 2)
	lg2, _ := math.Lgamma(df / 2)
	return math.Exp(lg1-lg2) / math.Sqrt(df*math.Pi) *
		math.Pow(1+x*x/df, -(df+1)/2)
}

// RegIncBeta is the regularized incomplete beta function I_x(a, b), computed
// with the continued-fraction expansion of Numerical Recipes (Lentz's
// algorithm); accurate to ~1e-14 for moderate a, b.
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lga, _ := math.Lgamma(a)
	lgb, _ := math.Lgamma(b)
	lgab, _ := math.Lgamma(a + b)
	front := math.Exp(lgab - lga - lgb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for RegIncBeta via modified
// Lentz's method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-16
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		aa := float64(m) * (b - float64(m)) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
