package feasim

import (
	"feasim/internal/fault"
	"feasim/internal/peer"
	"feasim/internal/serve"
)

// ---- HTTP query service ----
//
// The serve layer puts the typed Query/Answer envelope over HTTP: POST
// /v1/query answers one envelope, POST /v1/batch a JSON array of envelopes
// in one round trip (per-item status, one deadline, one limiter slot), POST
// /v1/sweep a QuerySweepSpec grid, GET /v1/healthz and /v1/stats report
// liveness and the cache/traffic counters. Every backend sits behind the
// shared answer layer (the sharded AnswerCache + CachedSolver), so repeated
// queries are served from the LRU and concurrent identical queries execute
// once; response encoding is pooled and envelope parsing memoized by raw
// request bytes. `feasim serve` is the CLI front-end.

// QueryServer serves typed queries over HTTP with answer caching, request
// coalescing, a concurrency limiter, per-request deadlines and graceful
// shutdown.
type QueryServer = serve.Server

// ServeConfig configures NewQueryServer; the zero value serves the three
// standard backends with default options.
type ServeConfig = serve.Config

// ServerStats is the /v1/stats payload: traffic counters, the in-flight
// gauge, per-kind counts and the cache statistics.
type ServerStats = serve.Stats

// NewQueryServer builds the HTTP query service.
func NewQueryServer(cfg ServeConfig) (*QueryServer, error) { return serve.New(cfg) }

// ---- Multi-node answer tier (cluster mode) ----
//
// N query servers become one cache and one solver fleet: a consistent-hash
// ring over the answer-cache key assigns every query a home node, non-home
// nodes forward the envelope there over HTTP and keep the answer as a local
// replica, and per-peer health probing ejects dead peers (queries then fall
// back to a local solve — availability over strict ownership). Build a
// ServeCluster with NewServeCluster and hand it to ServeConfig.Cluster;
// inspect it live via GET /v1/cluster or `feasim cluster`. (The name stays
// clear of Cluster, which is the paper's Section 4 virtual workstation
// cluster.)

// ServeCluster is one node's view of the answer-tier ring: membership,
// per-peer health, and the forwarding transport.
type ServeCluster = peer.Cluster

// ServeClusterConfig configures NewServeCluster: this node's own URL, the
// static peer list, and the health-probe/forwarding knobs.
type ServeClusterConfig = peer.Config

// ClusterStatus is the GET /v1/cluster snapshot: ring layout, ownership
// fractions, peer health and the forward/fallback/replica counters.
type ClusterStatus = peer.Status

// ClusterPeerStatus is one remote member's health record inside a
// ClusterStatus.
type ClusterPeerStatus = peer.PeerStatus

// ClusterForwardHeader marks a forwarded request; a node receiving it
// answers locally, never re-forwards (the loop guard).
const ClusterForwardHeader = peer.ForwardHeader

// NewServeCluster validates the config and builds the node's cluster view;
// the health prober starts when the cluster is handed to a query server.
func NewServeCluster(cfg ServeClusterConfig) (*ServeCluster, error) { return peer.New(cfg) }

// ---- Fault injection (chaos) ----
//
// The fault layer injects seeded, deterministic failures — transport faults
// (latency, refused connections, dropped responses, corrupted or trickled
// 200 bodies) via ChaosInjector.Transport wrapped around a peer client, and
// solver faults (latency, errors, panics) via ServeConfig.Fault. Nothing is
// injected unless a spec enables it; `feasim serve -chaos <spec>` is the CLI
// front-end. Built for chaos drills and the resilience test suite: the same
// seed replays the same fault schedule.

// ChaosSpec describes which faults to inject at what probability, plus the
// RNG seed that makes the schedule reproducible.
type ChaosSpec = fault.Spec

// ChaosInjector draws seeded faults; wrap transports with Transport and
// solvers via ServeConfig.Fault. A nil injector injects nothing.
type ChaosInjector = fault.Injector

// ChaosStats counts injected faults (also surfaced under "chaos" in
// /v1/stats when injection is enabled).
type ChaosStats = fault.Stats

// ErrChaosInjected marks failures manufactured by a ChaosInjector.
var ErrChaosInjected = fault.ErrInjected

// ParseChaosSpec parses the -chaos flag grammar, e.g.
// "seed=42;latency=0.2:1ms-5ms;error=0.1;drop=0.05;corrupt=0.1;trickle=0.1".
func ParseChaosSpec(text string) (ChaosSpec, error) { return fault.ParseSpec(text) }

// NewChaosInjector validates the spec and builds an injector.
func NewChaosInjector(spec ChaosSpec) (*ChaosInjector, error) { return fault.New(spec) }
