package feasim

import (
	"feasim/internal/peer"
	"feasim/internal/serve"
)

// ---- HTTP query service ----
//
// The serve layer puts the typed Query/Answer envelope over HTTP: POST
// /v1/query answers one envelope, POST /v1/batch a JSON array of envelopes
// in one round trip (per-item status, one deadline, one limiter slot), POST
// /v1/sweep a QuerySweepSpec grid, GET /v1/healthz and /v1/stats report
// liveness and the cache/traffic counters. Every backend sits behind the
// shared answer layer (the sharded AnswerCache + CachedSolver), so repeated
// queries are served from the LRU and concurrent identical queries execute
// once; response encoding is pooled and envelope parsing memoized by raw
// request bytes. `feasim serve` is the CLI front-end.

// QueryServer serves typed queries over HTTP with answer caching, request
// coalescing, a concurrency limiter, per-request deadlines and graceful
// shutdown.
type QueryServer = serve.Server

// ServeConfig configures NewQueryServer; the zero value serves the three
// standard backends with default options.
type ServeConfig = serve.Config

// ServerStats is the /v1/stats payload: traffic counters, the in-flight
// gauge, per-kind counts and the cache statistics.
type ServerStats = serve.Stats

// NewQueryServer builds the HTTP query service.
func NewQueryServer(cfg ServeConfig) (*QueryServer, error) { return serve.New(cfg) }

// ---- Multi-node answer tier (cluster mode) ----
//
// N query servers become one cache and one solver fleet: a consistent-hash
// ring over the answer-cache key assigns every query a home node, non-home
// nodes forward the envelope there over HTTP and keep the answer as a local
// replica, and per-peer health probing ejects dead peers (queries then fall
// back to a local solve — availability over strict ownership). Build a
// ServeCluster with NewServeCluster and hand it to ServeConfig.Cluster;
// inspect it live via GET /v1/cluster or `feasim cluster`. (The name stays
// clear of Cluster, which is the paper's Section 4 virtual workstation
// cluster.)

// ServeCluster is one node's view of the answer-tier ring: membership,
// per-peer health, and the forwarding transport.
type ServeCluster = peer.Cluster

// ServeClusterConfig configures NewServeCluster: this node's own URL, the
// static peer list, and the health-probe/forwarding knobs.
type ServeClusterConfig = peer.Config

// ClusterStatus is the GET /v1/cluster snapshot: ring layout, ownership
// fractions, peer health and the forward/fallback/replica counters.
type ClusterStatus = peer.Status

// ClusterPeerStatus is one remote member's health record inside a
// ClusterStatus.
type ClusterPeerStatus = peer.PeerStatus

// ClusterForwardHeader marks a forwarded request; a node receiving it
// answers locally, never re-forwards (the loop guard).
const ClusterForwardHeader = peer.ForwardHeader

// NewServeCluster validates the config and builds the node's cluster view;
// the health prober starts when the cluster is handed to a query server.
func NewServeCluster(cfg ServeClusterConfig) (*ServeCluster, error) { return peer.New(cfg) }
