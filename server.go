package feasim

import "feasim/internal/serve"

// ---- HTTP query service ----
//
// The serve layer puts the typed Query/Answer envelope over HTTP: POST
// /v1/query answers one envelope, POST /v1/batch a JSON array of envelopes
// in one round trip (per-item status, one deadline, one limiter slot), POST
// /v1/sweep a QuerySweepSpec grid, GET /v1/healthz and /v1/stats report
// liveness and the cache/traffic counters. Every backend sits behind the
// shared answer layer (the sharded AnswerCache + CachedSolver), so repeated
// queries are served from the LRU and concurrent identical queries execute
// once; response encoding is pooled and envelope parsing memoized by raw
// request bytes. `feasim serve` is the CLI front-end.

// QueryServer serves typed queries over HTTP with answer caching, request
// coalescing, a concurrency limiter, per-request deadlines and graceful
// shutdown.
type QueryServer = serve.Server

// ServeConfig configures NewQueryServer; the zero value serves the three
// standard backends with default options.
type ServeConfig = serve.Config

// ServerStats is the /v1/stats payload: traffic counters, the in-flight
// gauge, per-kind counts and the cache statistics.
type ServerStats = serve.Stats

// NewQueryServer builds the HTTP query service.
func NewQueryServer(cfg ServeConfig) (*QueryServer, error) { return serve.New(cfg) }
