// Package feasim is a library for studying the feasibility of distributed
// computing on non-dedicated workstation clusters, reproducing Leutenegger
// & Sun, "Distributed Computing Feasibility in a Non-Dedicated Homogeneous
// Distributed System" (ICASE 93-65 / NASA CR-191532, Supercomputing '93).
//
// The question the library answers: given W workstations whose owners
// reclaim their machines with preemptive priority, how large must a
// parallel job be before stealing the idle cycles pays off? The paper's
// answer — and this library's central metric — is the task ratio: the
// per-task demand divided by the mean owner burst demand.
//
// # Typed Query/Answer API
//
// The recommended entry point is declarative: describe the question once as
// a typed Query (serialized through the JSON envelope {"kind": ...}), then
// ask any capable backend to answer it — NewAnalyticSolver (the paper's
// equations), NewExactSimSolver (the discrete-time validation simulator),
// or NewDESSolver (the discrete-event engine that drops the model's
// simplifying assumptions). The kinds cover the paper's whole question
// family: "report" (the Section 3 metrics), "threshold" (the
// conclusions-table minimum task ratio), "partition" (cluster
// right-sizing), "distribution" (deadline quantiles), "scaled"
// (memory-bounded scaleup). Solver.Capabilities lists what a backend
// answers; Solve remains the ReportQuery shorthand. RunSweep and
// RunQuerySweep fan grids across a context-cancellable worker pool with
// deterministic per-point seeding.
//
//	s := feasim.Scenario{J: 12000, W: 60, O: 10, Util: 0.05, TargetEff: 0.8}
//	rep, _ := feasim.NewAnalyticSolver().Solve(ctx, s)
//	fmt.Printf("task ratio %.0f → weighted efficiency %.2f\n",
//	    rep.TaskRatio, rep.WeightedEfficiency)
//
//	a, _ := feasim.NewDESSolver(feasim.DefaultProtocol(), 10).Answer(ctx,
//	    feasim.ThresholdQuery{W: 60, O: 10, Util: 0.1, TargetEff: 0.8})
//	fmt.Printf("empirical min task ratio %d\n", a.(feasim.ThresholdAnswer).MinRatio)
//
// # Layers
//
//   - Query/Answer/Solver/Sweep (Query, Scenario, Solver, Report, RunSweep,
//     RunQuerySweep): the declarative facade over every layer below.
//   - The analytical model (Analyze, Assess, ThresholdTable, ScaledSweep):
//     exact discrete-time results from the paper's equations (1)-(8).
//   - Simulation (NewExactSimulator, NewGeneralSimulator, RunExact,
//     RunGeneral): the paper's CSIM study, plus generalizations with
//     arbitrary owner/task distributions on a process-oriented
//     discrete-event engine.
//   - Virtual cluster + PVM (NewCluster, LocalComputation, NewVM): the
//     paper's Section 4 experiment — a PVM-style message-passing program on
//     virtual non-dedicated Sun ELC workstations.
//   - Experiments (Experiments, RunExperiment): regenerate every figure and
//     table in the paper.
//
// All types are aliases of the implementation packages under internal/, so
// the godoc for methods lives with the types shown here.
package feasim

import (
	"feasim/internal/cluster"
	"feasim/internal/core"
	"feasim/internal/experiment"
	"feasim/internal/plot"
	"feasim/internal/pvm"
	"feasim/internal/rng"
	"feasim/internal/sim"
	"feasim/internal/stats"
)

// ---- Analytical model (the paper's primary contribution) ----

// Params are the model inputs: J (total job demand), W (workstations),
// O (owner burst demand), P (owner request probability per unit of task
// progress).
type Params = core.Params

// Result is the full model output: E_t, E_j and all Section 3 metrics.
type Result = core.Result

// Metrics are task ratio, speedup, efficiency and their weighted variants.
type Metrics = core.Metrics

// Binomial is the owner-interruption count distribution Bin(T, P).
type Binomial = core.Binomial

// AnalyticThresholdQuery is the flat analytic threshold solver.
//
// Superseded by ThresholdQuery answered through Solver.Answer, which adds
// empirical (simulation-backed) thresholds and the JSON envelope.
type AnalyticThresholdQuery = core.ThresholdQuery

// ThresholdRow is one line of the conclusions table.
type ThresholdRow = core.ThresholdRow

// FeasibilityVerdict is the output of Assess.
type FeasibilityVerdict = core.FeasibilityVerdict

// ScaledPoint is one system size of a memory-bounded scaleup sweep.
type ScaledPoint = core.ScaledPoint

// NewParams builds Params from the raw inputs.
func NewParams(j float64, w int, o, p float64) Params { return core.NewParams(j, w, o, p) }

// ParamsFromUtilization derives P from a target owner utilization.
func ParamsFromUtilization(j float64, w int, o, util float64) (Params, error) {
	return core.ParamsFromUtilization(j, w, o, util)
}

// Analyze evaluates the model.
func Analyze(p Params) (Result, error) { return core.Analyze(p) }

// Assess combines Analyze with the threshold solver into a verdict.
func Assess(p Params, targetWeightedEff float64) (FeasibilityVerdict, error) {
	return core.Assess(p, targetWeightedEff)
}

// ThresholdTable reproduces the conclusions table: minimum task ratio for a
// target weighted efficiency at each utilization.
//
// Superseded by ThresholdQuery via Solver.Answer (one query per
// utilization, any capable backend); kept for the flat analytic table.
func ThresholdTable(w int, o, target float64, utils []float64) ([]ThresholdRow, error) {
	return core.ThresholdTable(w, o, target, utils)
}

// ScaledSweep analyzes memory-bounded scaleup (J = T·W) across system sizes.
//
// Superseded by ScaledQuery via Solver.Answer, which returns the curve in
// the JSON envelope form.
func ScaledSweep(t, o, util float64, ws []int) ([]ScaledPoint, error) {
	return core.ScaledSweep(t, o, util, ws)
}

// TimeDistribution is a discrete completion-time distribution with
// quantiles and tail probabilities.
type TimeDistribution = core.TimeDistribution

// PartitionPlan is a right-sized cluster allocation for a fixed job.
type PartitionPlan = core.PartitionPlan

// JobTimeDistribution returns the exact distribution of the job completion
// time (mean = E_j), enabling quantiles and deadline probabilities.
func JobTimeDistribution(p Params) (TimeDistribution, error) { return core.JobTimeDistribution(p) }

// TaskTimeDistribution returns the exact distribution of one task's
// completion time (mean = E_t).
func TaskTimeDistribution(p Params) (TimeDistribution, error) { return core.TaskTimeDistribution(p) }

// DeadlineProb returns P(job completes within deadline).
func DeadlineProb(p Params, deadline float64) (float64, error) { return core.DeadlineProb(p, deadline) }

// AnalyzeGumbel is the O(1) extreme-value approximation of Analyze for very
// large task demands.
func AnalyzeGumbel(p Params) (Result, error) { return core.AnalyzeGumbel(p) }

// MaxWorkstations returns the largest system size at which a fixed job
// still meets the weighted-efficiency target.
//
// Superseded by PartitionQuery via Solver.Answer, which adds empirical
// (DES-backed) right-sizing and the JSON envelope.
func MaxWorkstations(j, o, util, target float64, maxW int) (int, error) {
	return core.MaxWorkstations(j, o, util, target, maxW)
}

// PlanPartition right-sizes a fixed job: the largest W meeting the target,
// with the model output at that size.
//
// Superseded by PartitionQuery via Solver.Answer; kept for the flat
// analytic plan.
func PlanPartition(j, o, util, target float64, maxW int) (PartitionPlan, error) {
	return core.PlanPartition(j, o, util, target, maxW)
}

// ---- Heterogeneous fleets (per-station availability/speed) ----

// FleetStation is one group of identical stations in a heterogeneous fleet:
// Count stations with owner request probability P, executing task work at
// Speed times the reference rate (0 means 1).
type FleetStation = core.FleetStation

// Fleet is the heterogeneous feasibility question: job demand J split one
// task per station, shared owner burst demand O, per-group availability and
// speed.
type Fleet = core.Fleet

// FleetResult is the heterogeneous model output, mirroring Result.
type FleetResult = core.FleetResult

// FleetVerdict is the heterogeneous feasibility verdict, mirroring
// FeasibilityVerdict.
type FleetVerdict = core.FleetVerdict

// FleetThresholdQuery is the heterogeneous minimum-task-ratio solver.
type FleetThresholdQuery = core.FleetThresholdQuery

// FleetScaledPoint is one system size of a heterogeneous scaled sweep.
type FleetScaledPoint = core.FleetScaledPoint

// PBGroup is one (probability, trial count) group of a Poisson-binomial
// sum.
type PBGroup = core.PBGroup

// PoissonBinomialTables is the distribution of a sum of independent
// binomials with distinct probabilities — the generalized kernel behind
// heterogeneous fleets. Homogeneous inputs collapse to the shared
// binomial tables bit-for-bit.
type PoissonBinomialTables = core.PoissonBinomialTables

// PoissonBinomial builds (or reuses, via the process-wide memo) the tables
// for the Poisson-binomial sum over the given groups.
func PoissonBinomial(groups []PBGroup) (*PoissonBinomialTables, error) {
	return core.PoissonBinomial(groups)
}

// PoissonBinomialCacheStats reports the process-wide Poisson-binomial memo
// hit/miss counters.
func PoissonBinomialCacheStats() (hits, misses uint64) {
	return core.PoissonBinomialCacheStats()
}

// AnalyzeFleet evaluates the heterogeneous model; a fleet that collapses to
// one reference-speed group reproduces Analyze bit-for-bit.
func AnalyzeFleet(f Fleet) (FleetResult, error) { return core.AnalyzeFleet(f) }

// AssessFleet combines AnalyzeFleet with the fleet threshold solver.
func AssessFleet(f Fleet, targetWeightedEff float64) (FleetVerdict, error) {
	return core.AssessFleet(f, targetWeightedEff)
}

// FleetJobTimeDistribution returns the exact heterogeneous job
// completion-time distribution.
func FleetJobTimeDistribution(f Fleet) (TimeDistribution, error) {
	return core.FleetJobTimeDistribution(f)
}

// FleetDeadlineProb returns P(fleet job completes within deadline).
func FleetDeadlineProb(f Fleet, deadline float64) (float64, error) {
	return core.FleetDeadlineProb(f, deadline)
}

// TileFleet expands a station template cyclically to exactly w stations.
func TileFleet(template []FleetStation, w int) ([]FleetStation, error) {
	return core.TileFleet(template, w)
}

// MaxFleetWorkstations right-sizes a heterogeneous mix: the largest tiled
// fleet meeting the target weighted efficiency.
func MaxFleetWorkstations(j, o float64, template []FleetStation, target float64, maxW int) (int, error) {
	return core.MaxFleetWorkstations(j, o, template, target, maxW)
}

// ScaledFleetSweep is the memory-bounded scaleup curve over a heterogeneous
// mix (J = t·W, template tiled to each size).
func ScaledFleetSweep(t, o float64, template []FleetStation, ws []int) ([]FleetScaledPoint, error) {
	return core.ScaledFleetSweep(t, o, template, ws)
}

// ---- Simulation (Section 2.2 and its future-work extensions) ----

// ExactSimulator is the discrete-time simulator matching the analysis.
type ExactSimulator = sim.Exact

// GeneralSimulator is the DES-based simulator with arbitrary distributions.
type GeneralSimulator = sim.General

// GeneralConfig configures the general simulator.
type GeneralConfig = sim.GeneralConfig

// StationWorkload describes one workstation's owner workload in the
// general simulator.
type StationWorkload = sim.StationConfig

// Protocol is the batch-means output-analysis protocol.
type Protocol = sim.Protocol

// SimResult is a measured simulation run with confidence intervals.
type SimResult = sim.RunResult

// NewExactSimulator builds the exact simulator.
//
// Deprecated: use NewExactSimSolver with a Scenario; it wraps the simulator
// and the batch-means protocol in one context-aware call.
func NewExactSimulator(p Params, seed uint64) (*ExactSimulator, error) { return sim.NewExact(p, seed) }

// NewGeneralSimulator builds the general simulator.
//
// Deprecated: use NewDESSolver with a Scenario; it wraps the simulator and
// the batch-means protocol in one context-aware call.
func NewGeneralSimulator(cfg GeneralConfig) (*GeneralSimulator, error) { return sim.NewGeneral(cfg) }

// HomogeneousGeometric builds the paper's workload for the general
// simulator.
func HomogeneousGeometric(w int, t, o, p float64) GeneralConfig {
	return sim.HomogeneousGeometric(w, t, o, p)
}

// DefaultProtocol is the paper's protocol: 20 batches of 1000 samples, 90%
// confidence, 1% target half-width.
func DefaultProtocol() Protocol { return sim.DefaultProtocol() }

// RunExact applies the protocol to the exact simulator.
//
// Deprecated: use NewExactSimSolver(pr).Solve with a Scenario.
func RunExact(x *ExactSimulator, pr Protocol) (SimResult, error) { return sim.RunExact(x, pr) }

// RunGeneral applies the protocol to the general simulator.
//
// Deprecated: use NewDESSolver(pr, warmup).Solve with a Scenario.
func RunGeneral(g *GeneralSimulator, pr Protocol) (SimResult, error) { return sim.RunGeneral(g, pr) }

// ValidateAgainstAnalysis runs the paper's validation: simulation CIs must
// cover the analytic values.
//
// Deprecated: solve one Scenario with NewAnalyticSolver and NewExactSimSolver
// and compare the analytic point estimate against the simulated intervals.
func ValidateAgainstAnalysis(p Params, pr Protocol, seed uint64, slack float64) (SimResult, Result, bool, error) {
	return sim.ValidateAgainstAnalysis(p, pr, seed, slack)
}

// MultiJobConfig configures the closed multi-job contention simulator (the
// paper assumes one job at a time; this relaxes that).
type MultiJobConfig = sim.MultiJobConfig

// MultiJobStats is the multi-job simulation output.
type MultiJobStats = sim.MultiJobStats

// MultiJobPoint is one multiprogramming level of a sweep.
type MultiJobPoint = sim.MultiJobPoint

// RunMultiJob simulates n measured executions of each of cfg.Jobs
// concurrent parallel jobs.
func RunMultiJob(cfg MultiJobConfig, n int) (MultiJobStats, error) { return sim.RunMultiJob(cfg, n) }

// MultiJobSweep runs the multi-job simulation at each multiprogramming
// level.
func MultiJobSweep(base MultiJobConfig, levels []int, n int) ([]MultiJobPoint, error) {
	return sim.MultiJobSweepLevels(base, levels, n)
}

// ---- Distributions ----

// Dist is a random-variate distribution with known moments.
type Dist = rng.Dist

// Stream is a seedable, splittable random stream.
type Stream = rng.Stream

// Distribution constructors (see package rng for the full set).
type (
	// Deterministic is a point mass.
	Deterministic = rng.Deterministic
	// Exponential has CV 1.
	Exponential = rng.Exponential
	// Erlang has CV 1/sqrt(K).
	Erlang = rng.Erlang
	// HyperExp has CV > 1 — the "much larger variance" owner demands of the
	// paper's reference [7].
	HyperExp = rng.HyperExp
	// Pareto is heavy-tailed — the long-running owner jobs of Section 5.
	Pareto = rng.Pareto
	// Geometric is the paper's owner think time.
	Geometric = rng.Geometric
	// Uniform is continuous uniform.
	Uniform = rng.Uniform
)

// NewStream creates a reproducible random stream.
func NewStream(seed uint64) *Stream { return rng.NewStream(seed) }

// ParseDist builds a distribution from a spec string such as "exp:10" or
// "hyper:0.1,55,5".
func ParseDist(spec string) (Dist, error) { return rng.Parse(spec) }

// BalancedHyperExp builds a hyperexponential with a given mean and squared
// coefficient of variation.
func BalancedHyperExp(mean, cv2 float64) HyperExp { return rng.BalancedHyperExp(mean, cv2) }

// ---- Virtual non-dedicated cluster + PVM experiment (Section 4) ----

// Cluster is a set of virtual non-dedicated workstations.
type Cluster = cluster.Cluster

// StationParams configures one workstation's owner workload.
type StationParams = cluster.StationParams

// Station is one virtual workstation.
type Station = cluster.Station

// TaskRecord is one task execution's timing record.
type TaskRecord = cluster.TaskRecord

// LocalComputation is the paper's perfectly parallel experiment program.
type LocalComputation = cluster.LocalComputation

// ClusterExperiment repeats the local computation the paper's 10 times.
type ClusterExperiment = cluster.Experiment

// Migrator is the task-migration extension for long-running owner jobs.
type Migrator = cluster.Migrator

// NewCluster builds a homogeneous virtual cluster.
func NewCluster(n int, params StationParams, seed uint64) (*Cluster, error) {
	return cluster.New(n, params, seed)
}

// NewHeterogeneousCluster builds a cluster with per-station workloads.
func NewHeterogeneousCluster(params []StationParams, seed uint64) (*Cluster, error) {
	return cluster.NewHeterogeneous(params, seed)
}

// SunELCParams reproduces the paper's measured 3%-utilization Sun ELC
// environment (pass any utilization in [0,1)).
func SunELCParams(o, util float64) (StationParams, error) { return cluster.SunELCParams(o, util) }

// ExecutionTrace records compute/owner interval timelines on stations.
type ExecutionTrace = cluster.Trace

// NewExecutionTrace creates an empty trace; attach with Station.SetTrace.
func NewExecutionTrace() *ExecutionTrace { return cluster.NewTrace() }

// OwnerSchedule is a repeating sequence of owner-workload phases (e.g. a
// busy day and a quiet night) for nonstationary-owner studies.
type OwnerSchedule = cluster.Schedule

// OwnerPhase is one segment of an OwnerSchedule.
type OwnerPhase = cluster.Phase

// PhasedStation is a workstation whose owner follows an OwnerSchedule.
type PhasedStation = cluster.PhasedStation

// Workday builds the canonical two-phase schedule: a busy day and a quiet
// night with the given owner utilizations and burst demand.
func Workday(dayUtil, nightUtil, o, dayLen, nightLen float64) (OwnerSchedule, error) {
	return cluster.Workday(dayUtil, nightUtil, o, dayLen, nightLen)
}

// NewPhasedStation builds a workstation with a nonstationary owner.
func NewPhasedStation(name string, schedule OwnerSchedule, stream *Stream) (*PhasedStation, error) {
	return cluster.NewPhasedStation(name, schedule, stream)
}

// ---- PVM-style message passing ----

// VM is the PVM-style virtual machine.
type VM = pvm.VM

// PVMConfig configures a virtual machine.
type PVMConfig = pvm.Config

// PVMTask is a running task's handle (send/recv/groups/barrier).
type PVMTask = pvm.Task

// TID is a task identifier.
type TID = pvm.TID

// MsgBuffer is a typed pack/unpack message buffer.
type MsgBuffer = pvm.Buffer

// Transport kinds for the virtual machine.
const (
	TransportInProc = pvm.InProc
	TransportTCP    = pvm.TCP
)

// Receive wildcards.
const (
	AnyTID = pvm.AnyTID
	AnyTag = pvm.AnyTag
)

// NewVM assembles a PVM-style virtual machine.
func NewVM(cfg PVMConfig) (*VM, error) { return pvm.NewVM(cfg) }

// NewMsgBuffer returns an empty send buffer (pvm_initsend).
func NewMsgBuffer() *MsgBuffer { return pvm.NewBuffer() }

// ---- Statistics ----

// Summary is a single-pass mean/variance/min/max accumulator.
type Summary = stats.Summary

// CI is a confidence interval.
type CI = stats.CI

// BatchMeans is the paper's output-analysis method.
type BatchMeans = stats.BatchMeans

// NewBatchMeans creates a batch-means collector.
func NewBatchMeans(batchSize int) *BatchMeans { return stats.NewBatchMeans(batchSize) }

// ---- Experiments: regenerate the paper's figures and tables ----

// Experiment is one reproducible paper artifact.
type Experiment = experiment.Definition

// ExperimentConfig tunes experiment execution.
type ExperimentConfig = experiment.Config

// ExperimentOutput is a figure or table plus paper-vs-measured checks.
type ExperimentOutput = experiment.Output

// ExperimentResult pairs a definition with its output.
type ExperimentResult = experiment.Result

// Figure is a set of named curves; Table is a text table.
type (
	Figure = plot.Figure
	Table  = plot.Table
	Series = plot.Series
)

// Experiments lists every figure/table experiment in paper order.
func Experiments() []Experiment { return experiment.All() }

// ExperimentByID finds one experiment ("fig01" ... "fig11", "simval",
// "thresholds").
func ExperimentByID(id string) (Experiment, bool) { return experiment.ByID(id) }

// DefaultExperimentConfig reproduces the paper's settings.
func DefaultExperimentConfig() ExperimentConfig { return experiment.DefaultConfig() }

// RunAllExperiments executes every experiment.
func RunAllExperiments(cfg ExperimentConfig) []ExperimentResult { return experiment.RunAll(cfg) }

// ExperimentReport renders a paper-vs-measured markdown table.
func ExperimentReport(results []ExperimentResult) string { return experiment.MarkdownReport(results) }

// RenderASCII draws a figure as terminal ASCII art.
func RenderASCII(f Figure, width, height int) (string, error) {
	return plot.RenderASCII(f, width, height)
}

// FigureCSV renders a figure as CSV.
func FigureCSV(f Figure) (string, error) { return plot.CSV(f) }
