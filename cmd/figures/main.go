// Command figures regenerates every figure and table in the paper's
// evaluation and writes the data to an output directory:
//
//	out/<id>.csv   the plotted series (or table rows)
//	out/<id>.txt   an ASCII rendering
//	out/<id>.dat   gnuplot data
//	out/<id>.gp    gnuplot script
//	out/REPORT.md  paper-vs-measured for every quoted number
//
// Usage:
//
//	figures [-out out] [-id fig07] [-fast] [-ascii]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"feasim"
	"feasim/internal/experiment"
	"feasim/internal/plot"
)

func main() {
	outDir := flag.String("out", "out", "output directory")
	id := flag.String("id", "", "regenerate a single experiment (default: all)")
	fast := flag.Bool("fast", false, "scaled-down configuration (CI smoke runs)")
	ascii := flag.Bool("ascii", false, "print ASCII charts to stdout as they are produced")
	flag.Parse()

	cfg := experiment.DefaultConfig()
	if *fast {
		cfg = experiment.TestConfig()
	}

	defs := experiment.All()
	if *id != "" {
		d, ok := experiment.ByID(*id)
		if !ok {
			fmt.Fprintf(os.Stderr, "figures: unknown experiment %q (have %v)\n", *id, experiment.IDs())
			os.Exit(2)
		}
		defs = []experiment.Definition{d}
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}

	var results []experiment.Result
	failures := 0
	for _, d := range defs {
		fmt.Printf("== %s: %s\n", d.ID, d.Paper)
		out, err := d.Run(cfg)
		results = append(results, experiment.Result{Definition: d, Output: out, Err: err})
		if err != nil {
			fmt.Fprintf(os.Stderr, "   ERROR: %v\n", err)
			failures++
			continue
		}
		if err := emit(*outDir, d.ID, out, *ascii); err != nil {
			fmt.Fprintf(os.Stderr, "   write error: %v\n", err)
			failures++
			continue
		}
		for _, c := range out.Checks {
			fmt.Printf("   %s\n", c)
			if !c.Pass() {
				failures++
			}
		}
	}

	report := "# Paper vs. measured\n\n" + experiment.MarkdownReport(results)
	if err := os.WriteFile(filepath.Join(*outDir, "REPORT.md"), []byte(report), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", filepath.Join(*outDir, "REPORT.md"))
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "figures: %d failures\n", failures)
		os.Exit(1)
	}
}

// emit writes all renderings of one experiment output.
func emit(dir, id string, out feasim.ExperimentOutput, ascii bool) error {
	write := func(ext, content string) error {
		return os.WriteFile(filepath.Join(dir, id+ext), []byte(content), 0o644)
	}
	if out.Figure != nil {
		csv, err := plot.CSV(*out.Figure)
		if err != nil {
			return err
		}
		if err := write(".csv", csv); err != nil {
			return err
		}
		art, err := plot.RenderASCII(*out.Figure, 100, 28)
		if err != nil {
			return err
		}
		if err := write(".txt", art); err != nil {
			return err
		}
		if ascii {
			fmt.Println(art)
		}
		dat, gp, err := plot.Gnuplot(*out.Figure, id+".dat")
		if err != nil {
			return err
		}
		if err := write(".dat", dat); err != nil {
			return err
		}
		if err := write(".gp", gp); err != nil {
			return err
		}
	}
	if out.Table != nil {
		if err := write(".csv", out.Table.CSV()); err != nil {
			return err
		}
		if err := write(".txt", out.Table.Render()); err != nil {
			return err
		}
		if ascii {
			fmt.Println(out.Table.Render())
		}
	}
	return nil
}
