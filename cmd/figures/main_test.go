package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"feasim/internal/experiment"
)

func TestEmitWritesAllRenderings(t *testing.T) {
	dir := t.TempDir()
	d, ok := experiment.ByID("fig09")
	if !ok {
		t.Fatal("fig09 missing")
	}
	cfg := experiment.TestConfig()
	out, err := d.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := emit(dir, "fig09", out, false); err != nil {
		t.Fatal(err)
	}
	for _, ext := range []string{".csv", ".txt", ".dat", ".gp"} {
		path := filepath.Join(dir, "fig09"+ext)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing %s: %v", path, err)
		}
		if len(data) == 0 {
			t.Errorf("%s is empty", path)
		}
	}
	csv, _ := os.ReadFile(filepath.Join(dir, "fig09.csv"))
	if !strings.HasPrefix(string(csv), "Number of Processors") {
		t.Errorf("csv header: %q", strings.Split(string(csv), "\n")[0])
	}
}

func TestEmitTable(t *testing.T) {
	dir := t.TempDir()
	d, ok := experiment.ByID("thresholds")
	if !ok {
		t.Fatal("thresholds missing")
	}
	out, err := d.Run(experiment.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := emit(dir, "thresholds", out, false); err != nil {
		t.Fatal(err)
	}
	txt, err := os.ReadFile(filepath.Join(dir, "thresholds.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(txt), "Minimum task ratio") {
		t.Errorf("table rendering wrong:\n%s", txt)
	}
	// Tables produce no gnuplot output.
	if _, err := os.Stat(filepath.Join(dir, "thresholds.gp")); !os.IsNotExist(err) {
		t.Error("tables should not emit gnuplot scripts")
	}
}
