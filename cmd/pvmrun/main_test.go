package main

import (
	"os"
	"testing"
)

func TestRunExperiment(t *testing.T) {
	old := os.Stdout
	null, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = null
	defer func() { os.Stdout = old; null.Close() }()

	if err := run(4, 2, 10, 0.03, 3, false, 7, true); err != nil {
		t.Fatal(err)
	}
	// TCP transport path.
	if err := run(2, 1, 10, 0.03, 2, true, 7, false); err != nil {
		t.Fatal(err)
	}
	// Invalid utilization propagates.
	if err := run(2, 1, 10, 1.5, 2, false, 7, false); err == nil {
		t.Error("bad utilization should error")
	}
}
