// Command pvmrun executes the paper's Section 4 experiment: a PVM-style
// local computation program on a virtual non-dedicated workstation cluster,
// reporting per-task times, the maximum task time, and the analytic
// prediction.
//
// Usage:
//
//	pvmrun [-w 12] [-demand 16] [-o 10] [-util 0.03] [-runs 10] [-tcp] [-seed 7]
//
// demand is the problem's service demand in dedicated minutes, as in the
// paper's Figures 10-11.
package main

import (
	"flag"
	"fmt"
	"os"

	"feasim"
)

func main() {
	w := flag.Int("w", 12, "number of workstations")
	demandMin := flag.Float64("demand", 16, "problem size in dedicated minutes")
	o := flag.Float64("o", 10, "owner burst demand (virtual seconds)")
	util := flag.Float64("util", 0.03, "owner utilization (paper measured 3%)")
	runs := flag.Int("runs", 10, "repetitions to average (paper: 10)")
	useTCP := flag.Bool("tcp", false, "route messages over loopback TCP")
	seed := flag.Uint64("seed", 7, "random seed")
	verbose := flag.Bool("v", false, "print per-task records of the first run")
	flag.Parse()

	if err := run(*w, *demandMin, *o, *util, *runs, *useTCP, *seed, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "pvmrun:", err)
		os.Exit(1)
	}
}

func run(w int, demandMin, o, util float64, runs int, useTCP bool, seed uint64, verbose bool) error {
	params, err := feasim.SunELCParams(o, util)
	if err != nil {
		return err
	}
	c, err := feasim.NewCluster(w, params, seed)
	if err != nil {
		return err
	}
	demand := demandMin * 60

	transport := feasim.TransportInProc
	if useTCP {
		transport = feasim.TransportTCP
	}
	lc := feasim.LocalComputation{
		Cluster:     c,
		Workers:     w,
		TotalDemand: demand,
		Transport:   transport,
	}

	fmt.Printf("virtual cluster: %d workstations, owner util %.1f%%, burst %gs\n", w, util*100, o)
	fmt.Printf("measured util over a probe horizon: %.2f%%\n", c.MeasureUtilization(200_000)*100)
	fmt.Printf("problem: %g dedicated minutes (%g s), %g s per task\n", demandMin, demand, demand/float64(w))

	first, err := lc.Run()
	if err != nil {
		return err
	}
	if verbose {
		fmt.Printf("%-8s %-10s %-10s %-10s %s\n", "station", "demand", "elapsed", "owner", "bursts")
		for _, rec := range first.Records {
			fmt.Printf("%-8s %-10.2f %-10.2f %-10.2f %d\n",
				rec.Station, rec.Demand, rec.Elapsed, rec.OwnerTime, rec.Bursts)
		}
	}

	exp := feasim.ClusterExperiment{LocalComputation: lc, Runs: runs}
	res, err := exp.Run()
	if err != nil {
		return err
	}
	p, err := feasim.ParamsFromUtilization(demand, w, o, util)
	if err != nil {
		return err
	}
	ana, err := feasim.Analyze(p)
	if err != nil {
		return err
	}
	fmt.Printf("mean max task time over %d runs: %.2f s (sd %.2f)\n",
		runs, res.MaxTaskTime.Mean(), res.MaxTaskTime.StdDev())
	fmt.Printf("analytic model prediction E_j:   %.2f s\n", ana.EJob)
	fmt.Printf("dedicated lower bound:           %.2f s\n", demand/float64(w))
	return nil
}
