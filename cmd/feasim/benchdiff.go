package main

// The benchdiff subcommand compares two BENCH_*.json reports (the schema
// cmdBench emits) and flags per-benchmark ns/op regressions past a
// threshold. CI runs it non-blocking after `make bench`, piping the Markdown
// table into the job summary so the performance trajectory of each PR is
// visible without gating merges on noisy shared runners.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// cmdBenchDiff diffs OLD.json NEW.json and prints a Markdown table; it never
// fails on regressions (the report is informational — the calling CI step is
// non-blocking), only on unreadable input.
func cmdBenchDiff(args []string) error {
	fs := flag.NewFlagSet("benchdiff", flag.ExitOnError)
	threshold := fs.Float64("threshold", 0.20, "fractional ns/op increase flagged as a regression")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("benchdiff: want exactly two report files (old new), got %d args", fs.NArg())
	}
	oldRep, err := loadBenchReport(fs.Arg(0))
	if err != nil {
		return err
	}
	newRep, err := loadBenchReport(fs.Arg(1))
	if err != nil {
		return err
	}
	oldBy := make(map[string]benchResult, len(oldRep.Benchmarks))
	for _, b := range oldRep.Benchmarks {
		oldBy[b.Name] = b
	}

	fmt.Printf("### Benchmark diff: %s → %s\n\n", fs.Arg(0), fs.Arg(1))
	fmt.Printf("| benchmark | old ns/op | new ns/op | delta |\n")
	fmt.Printf("|---|---:|---:|---:|\n")
	regressions := 0
	for _, nb := range newRep.Benchmarks {
		ob, ok := oldBy[nb.Name]
		if !ok {
			fmt.Printf("| %s | — | %.0f | new |\n", nb.Name, nb.NsPerOp)
			continue
		}
		delete(oldBy, ob.Name)
		delta := (nb.NsPerOp - ob.NsPerOp) / ob.NsPerOp
		mark := ""
		if delta > *threshold {
			mark = " ⚠️ REGRESSION"
			regressions++
		}
		fmt.Printf("| %s | %.0f | %.0f | %+.1f%%%s |\n", nb.Name, ob.NsPerOp, nb.NsPerOp, delta*100, mark)
	}
	for name := range oldBy {
		fmt.Printf("| %s | %.0f | — | removed |\n", name, oldBy[name].NsPerOp)
	}
	fmt.Println()
	if regressions > 0 {
		fmt.Printf("**%d benchmark(s) regressed more than %.0f%%.**\n", regressions, *threshold*100)
	} else {
		fmt.Printf("No regressions past %.0f%%.\n", *threshold*100)
	}
	return nil
}

// loadBenchReport reads one BENCH_*.json file.
func loadBenchReport(path string) (benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return benchReport{}, err
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return benchReport{}, fmt.Errorf("benchdiff: %s: %w", path, err)
	}
	return rep, nil
}
