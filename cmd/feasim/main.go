// Command feasim evaluates the non-dedicated distributed computing
// feasibility model from the command line.
//
// Subcommands:
//
//	analyze    evaluate the model at one parameter point
//	assess     feasibility verdict against a weighted-efficiency target
//	threshold  minimum task ratio table (the paper's conclusions)
//	scaled     memory-bounded scaleup sweep (Section 3.2)
//	simulate   validate the analysis by simulation (Section 2.2)
//
// Examples:
//
//	feasim analyze -j 1000 -w 100 -o 10 -util 0.05
//	feasim assess -j 600 -w 60 -o 10 -util 0.2 -target 0.8
//	feasim threshold -w 60 -o 10 -target 0.8 -utils 0.05,0.1,0.2
//	feasim scaled -t 100 -o 10 -util 0.1 -maxw 100
//	feasim simulate -j 1000 -w 50 -o 10 -util 0.2
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"feasim"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "assess":
		err = cmdAssess(os.Args[2:])
	case "threshold":
		err = cmdThreshold(os.Args[2:])
	case "scaled":
		err = cmdScaled(os.Args[2:])
	case "simulate":
		err = cmdSimulate(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "feasim: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "feasim:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: feasim <analyze|assess|threshold|scaled|simulate> [flags]
run "feasim <subcommand> -h" for flags`)
}

// modelFlags registers the shared model parameters on a flag set.
func modelFlags(fs *flag.FlagSet) (j *float64, w *int, o, util *float64) {
	j = fs.Float64("j", 1000, "total job demand J (time units)")
	w = fs.Int("w", 60, "number of workstations W")
	o = fs.Float64("o", 10, "owner burst demand O (time units)")
	util = fs.Float64("util", 0.05, "owner utilization U in [0,1)")
	return
}

func buildParams(j float64, w int, o, util float64) (feasim.Params, error) {
	return feasim.ParamsFromUtilization(j, w, o, util)
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	j, w, o, util := modelFlags(fs)
	fs.Parse(args)
	p, err := buildParams(*j, *w, *o, *util)
	if err != nil {
		return err
	}
	r, err := feasim.Analyze(p)
	if err != nil {
		return err
	}
	fmt.Printf("model: J=%g W=%d O=%g P=%.6g (owner utilization %.4g)\n", p.J, p.W, p.O, p.P, r.U)
	fmt.Printf("  task demand T          %12.4f\n", r.T)
	fmt.Printf("  task ratio T/O         %12.4f\n", r.Metrics.TaskRatio)
	fmt.Printf("  E[task time]           %12.4f\n", r.ETask)
	fmt.Printf("  E[job time]            %12.4f\n", r.EJob)
	fmt.Printf("  speedup                %12.4f\n", r.Speedup)
	fmt.Printf("  efficiency             %12.4f\n", r.Efficiency)
	fmt.Printf("  weighted speedup       %12.4f\n", r.WeightedSpeedup)
	fmt.Printf("  weighted efficiency    %12.4f\n", r.WeightedEfficiency)
	return nil
}

func cmdAssess(args []string) error {
	fs := flag.NewFlagSet("assess", flag.ExitOnError)
	j, w, o, util := modelFlags(fs)
	target := fs.Float64("target", 0.8, "target weighted efficiency")
	fs.Parse(args)
	p, err := buildParams(*j, *w, *o, *util)
	if err != nil {
		return err
	}
	v, err := feasim.Assess(p, *target)
	if err != nil {
		return err
	}
	verdict := "FEASIBLE"
	if !v.Feasible {
		verdict = "NOT FEASIBLE"
	}
	fmt.Printf("%s: weighted efficiency %.3f vs target %.3f\n", verdict, v.WeightedEfficiency, v.Target)
	fmt.Printf("  current task ratio  %.2f\n", v.Result.Metrics.TaskRatio)
	fmt.Printf("  required task ratio %d\n", v.MinRatio)
	fmt.Printf("  required job demand %.0f (current %.0f)\n", v.MinJobDemand, p.J)
	return nil
}

func cmdThreshold(args []string) error {
	fs := flag.NewFlagSet("threshold", flag.ExitOnError)
	w := fs.Int("w", 60, "number of workstations")
	o := fs.Float64("o", 10, "owner burst demand")
	target := fs.Float64("target", 0.8, "target weighted efficiency")
	utilsArg := fs.String("utils", "0.05,0.1,0.2", "comma-separated owner utilizations")
	fs.Parse(args)
	var utils []float64
	for _, s := range strings.Split(*utilsArg, ",") {
		u, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return fmt.Errorf("bad utilization %q: %v", s, err)
		}
		utils = append(utils, u)
	}
	rows, err := feasim.ThresholdTable(*w, *o, *target, utils)
	if err != nil {
		return err
	}
	fmt.Printf("minimum task ratio for weighted efficiency >= %.2f (W=%d, O=%g)\n", *target, *w, *o)
	fmt.Printf("%-12s %-10s %s\n", "utilization", "ratio", "achieved weff")
	for _, r := range rows {
		fmt.Printf("%-12.4g %-10d %.4f\n", r.Util, r.MinRatio, r.WeightedEff)
	}
	return nil
}

func cmdScaled(args []string) error {
	fs := flag.NewFlagSet("scaled", flag.ExitOnError)
	t := fs.Float64("t", 100, "fixed per-task demand T (J = T*W)")
	o := fs.Float64("o", 10, "owner burst demand")
	util := fs.Float64("util", 0.1, "owner utilization")
	maxw := fs.Int("maxw", 100, "largest system size")
	fs.Parse(args)
	var ws []int
	for w := 1; w <= *maxw; w *= 2 {
		ws = append(ws, w)
	}
	if ws[len(ws)-1] != *maxw {
		ws = append(ws, *maxw)
	}
	pts, err := feasim.ScaledSweep(*t, *o, *util, ws)
	if err != nil {
		return err
	}
	fmt.Printf("memory-bounded scaleup: T=%g, O=%g, util=%g\n", *t, *o, *util)
	fmt.Printf("%-6s %-12s %-22s %s\n", "W", "E[job time]", "increase vs dedicated", "increase vs W=1")
	for _, pt := range pts {
		fmt.Printf("%-6d %-12.3f %-22s %s\n", pt.W, pt.Result.EJob,
			fmt.Sprintf("%+.1f%%", pt.IncreaseVsDedicated*100),
			fmt.Sprintf("%+.1f%%", pt.IncreaseVsSingle*100))
	}
	return nil
}

func cmdSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	j, w, o, util := modelFlags(fs)
	seed := fs.Uint64("seed", 1993, "random seed")
	batches := fs.Int("batches", 20, "batch count (paper: 20)")
	batchSize := fs.Int("batchsize", 1000, "batch size (paper: 1000)")
	fs.Parse(args)
	p, err := buildParams(*j, *w, *o, *util)
	if err != nil {
		return err
	}
	pr := feasim.Protocol{Batches: *batches, BatchSize: *batchSize, Level: 0.90, MaxRel: 0.01, MaxSamples: 2_000_000}
	run, ana, ok, err := feasim.ValidateAgainstAnalysis(p, pr, *seed, 0.5)
	if err != nil {
		return err
	}
	fmt.Printf("simulation (%d samples, 90%% CIs):\n", run.Samples)
	fmt.Printf("  E[job time]  analysis %10.4f   simulated %v\n", ana.EJob, run.JobTime)
	fmt.Printf("  E[task time] analysis %10.4f   simulated %v\n", ana.ETask, run.MeanTask)
	if ok {
		fmt.Println("  analysis within simulation confidence intervals ✓")
	} else {
		fmt.Println("  analysis OUTSIDE simulation confidence intervals ✗")
	}
	return nil
}
