// Command feasim evaluates the non-dedicated distributed computing
// feasibility model from the command line.
//
// Subcommands:
//
//	query      answer a typed query envelope ({"kind": ...} JSON) with any
//	           capable backend: report, threshold, partition, distribution,
//	           scaled, timeline; -batch answers a JSON array of envelopes
//	           concurrently
//	serve      run the query service: the same envelopes over HTTP
//	           (POST /v1/query, POST /v1/batch, POST /v1/sweep) with answer
//	           caching and request coalescing in front of the backends;
//	           -self/-peers joins a multi-node answer tier (consistent-hash
//	           routing, circuit-breaker peer health, retries, hedged
//	           forwards, local fallback); -chaos injects seeded faults,
//	           -shed-analytic opts into degraded-mode load shedding
//	cluster    inspect a running node's cluster view: ring membership,
//	           ownership, breaker states, forward/retry/hedge/fallback and
//	           overload counters
//	run        answer a scenario JSON file with any or all solver backends
//	           (the "report" query kind as a convenience form)
//	sweep      fan a scenario grid across a parallel worker pool; -frontier
//	           runs an adaptive 2-D feasibility-boundary refinement instead,
//	           probing only where the boundary lives
//	analyze    evaluate the model at one parameter point
//	assess     feasibility verdict against a weighted-efficiency target
//	threshold  minimum task ratio table (superseded by `query` with
//	           {"kind": "threshold"})
//	scaled     memory-bounded scaleup sweep (superseded by `query` with
//	           {"kind": "scaled"})
//	simulate   validate the analysis by simulation (Section 2.2)
//	bench      run the core benchmarks and emit a JSON report
//	benchdiff  compare two bench reports and flag ns/op regressions
//
// Examples:
//
//	feasim query testdata/query_threshold.json
//	feasim query -backend exact -protocol 10,500 testdata/query_threshold.json
//	feasim query -backend all -json testdata/query_distribution.json
//	feasim serve -addr 127.0.0.1:8080
//	curl -s -XPOST --data-binary @testdata/query_threshold.json \
//	    'http://127.0.0.1:8080/v1/query?backend=analytic'
//	feasim run testdata/scenario.json
//	feasim run -backend des -warmup 20 -timeout 30s scenario.json
//	feasim sweep -workers 8 -json sweep.json
//	feasim sweep -frontier testdata/sweep_frontier.json
//	curl -sN -XPOST --data-binary @testdata/sweep_frontier.json \
//	    'http://127.0.0.1:8080/v1/sweep?mode=frontier'
//	feasim analyze -j 1000 -w 100 -o 10 -util 0.05
//	feasim assess -j 600 -w 60 -o 10 -util 0.2 -target 0.8
//	feasim threshold -w 60 -o 10 -target 0.8 -utils 0.05,0.1,0.2
//	feasim scaled -t 100 -o 10 -util 0.1 -maxw 100
//	feasim simulate -j 1000 -w 50 -o 10 -util 0.2
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"feasim"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "query":
		err = cmdQuery(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "cluster":
		err = cmdCluster(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "sweep":
		err = cmdSweep(os.Args[2:])
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "assess":
		err = cmdAssess(os.Args[2:])
	case "threshold":
		err = cmdThreshold(os.Args[2:])
	case "scaled":
		err = cmdScaled(os.Args[2:])
	case "simulate":
		err = cmdSimulate(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "benchdiff":
		err = cmdBenchDiff(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "feasim: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "feasim:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: feasim <query|serve|cluster|run|sweep|analyze|assess|threshold|scaled|simulate|bench|benchdiff> [flags]

query answers a typed query envelope file — {"kind": "report"|"threshold"|
"partition"|"distribution"|"scaled"|"timeline", ...} — with any capable
backend (-batch
answers a JSON array of envelopes concurrently); serve answers the same
envelopes over HTTP (POST /v1/query, /v1/batch, /v1/sweep) with answer
caching and request coalescing, and with -self/-peers joins a multi-node
answer tier (circuit breakers, retries, hedged forwards; -chaos injects
seeded faults for drills); cluster inspects a running node's ring
membership, breaker states and routing/overload counters (GET /v1/cluster);
run and sweep answer scenario files
(the "report" kind; sweep -frontier runs an adaptive 2-D feasibility-boundary
refinement, mirrored over HTTP as POST /v1/sweep?mode=frontier NDJSON);
benchdiff compares two bench reports and flags
regressions. Run "feasim <subcommand> -h" for flags.`)
}

// solveContext builds the run/sweep context, honoring an optional timeout.
func solveContext(timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout > 0 {
		return context.WithTimeout(context.Background(), timeout)
	}
	return context.WithCancel(context.Background())
}

// parseProtocol parses the shared -protocol flag ("batches,batchsize", e.g.
// "20,1000"); empty keeps the paper's protocol.
func parseProtocol(spec string) (feasim.Protocol, error) {
	if spec == "" {
		return feasim.DefaultProtocol(), nil
	}
	parts := strings.Split(spec, ",")
	if len(parts) != 2 {
		return feasim.Protocol{}, fmt.Errorf("bad -protocol %q: want batches,batchsize", spec)
	}
	b, err := strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil {
		return feasim.Protocol{}, fmt.Errorf("bad -protocol %q: %v", spec, err)
	}
	n, err := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err != nil {
		return feasim.Protocol{}, fmt.Errorf("bad -protocol %q: %v", spec, err)
	}
	pr := feasim.DefaultProtocol()
	pr.Batches, pr.BatchSize = b, n
	return pr, nil
}

// cmdRun answers one scenario file with the selected backend(s).
func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	backend := fs.String("backend", "all", `solver backend: analytic, exact, des, or "all"`)
	protocol := fs.String("protocol", "", "simulation protocol as batches,batchsize (default: the paper's 20,1000)")
	warmup := fs.Int("warmup", 0, "DES warmup job count (0 = default, negative disables)")
	timeout := fs.Duration("timeout", 0, "overall deadline for the solve (0 = none)")
	asJSON := fs.Bool("json", false, "emit reports as JSON")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("run: want exactly one scenario JSON file, got %d args", fs.NArg())
	}
	s, err := feasim.LoadScenario(fs.Arg(0))
	if err != nil {
		return err
	}
	pr, err := parseProtocol(*protocol)
	if err != nil {
		return err
	}
	backends := []string{*backend}
	if *backend == "all" {
		backends = feasim.Backends()
	}
	ctx, cancel := solveContext(*timeout)
	defer cancel()
	for _, name := range backends {
		solver, err := feasim.NewSolver(name, feasim.SolverOptions{Protocol: pr, Warmup: *warmup})
		if err != nil {
			return err
		}
		rep, err := solver.Solve(ctx, s)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if *asJSON {
			data, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				return err
			}
			fmt.Println(string(data))
		} else {
			printReport(rep)
		}
	}
	return nil
}

// printReport renders one report as aligned text.
func printReport(r feasim.Report) {
	name := r.Scenario.Name
	if name == "" {
		name = "scenario"
	}
	fmt.Printf("%s [%s] W=%d util=%.4g\n", name, r.Backend, r.W, r.U)
	ci := func(iv feasim.Interval) string {
		if iv.Zero() {
			return ""
		}
		return fmt.Sprintf("  [%.4f, %.4f]", iv.Lo, iv.Hi)
	}
	fmt.Printf("  E[job time]            %12.4f%s\n", r.EJob, ci(r.EJobCI))
	fmt.Printf("  E[task time]           %12.4f%s\n", r.ETask, ci(r.ETaskCI))
	if r.TaskRatio > 0 {
		fmt.Printf("  task ratio T/O         %12.4f\n", r.TaskRatio)
	}
	fmt.Printf("  speedup                %12.4f\n", r.Speedup)
	fmt.Printf("  efficiency             %12.4f\n", r.Efficiency)
	fmt.Printf("  weighted efficiency    %12.4f%s\n", r.WeightedEfficiency, ci(r.WeffCI))
	if r.Samples > 0 {
		fmt.Printf("  samples                %12d\n", r.Samples)
	}
	if r.Feasible != nil {
		verdict := "FEASIBLE"
		if !*r.Feasible {
			verdict = "NOT FEASIBLE"
		}
		fmt.Printf("  verdict                %12s (target %.2f)\n", verdict, r.Scenario.TargetEff)
		if r.MinRatio > 0 {
			fmt.Printf("  required task ratio    %12d (J >= %.0f)\n", r.MinRatio, r.MinJobDemand)
		}
	}
	if r.DeadlineProb != nil {
		fmt.Printf("  P(done by %-8.4g)    %12.6f\n", r.Scenario.Deadline, *r.DeadlineProb)
	}
}

// cmdSweep fans a sweep spec file across the worker pool, streaming one
// line per grid point as results complete. With -frontier the file is an
// adaptive frontier spec instead: recursive boundary refinement, one line
// per resolved cell.
func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	timeout := fs.Duration("timeout", 0, "overall deadline for the sweep (0 = none)")
	asJSON := fs.Bool("json", false, "emit one JSON object per result line")
	frontier := fs.Bool("frontier", false, "the file is a frontier spec: adaptive 2-D boundary refinement")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("sweep: want exactly one sweep spec JSON file, got %d args", fs.NArg())
	}
	if *frontier {
		return sweepFrontier(fs.Arg(0), *workers, *timeout, *asJSON)
	}
	spec, err := feasim.LoadSweep(fs.Arg(0))
	if err != nil {
		return err
	}
	if *workers > 0 {
		spec.Workers = *workers
	}
	ctx, cancel := solveContext(*timeout)
	defer cancel()
	ch, err := feasim.RunSweep(ctx, spec)
	if err != nil {
		return err
	}
	if !*asJSON {
		fmt.Printf("%-6s %-9s %-5s %-8s %-8s %-10s %-22s %s\n",
			"point", "backend", "W", "util", "ratio", "weff", "E[job]", "notes")
	}
	done, failed := 0, 0
	for res := range ch {
		if res.Err != nil {
			failed++
		} else {
			done++
		}
		if *asJSON {
			data, err := json.Marshal(res)
			if err != nil {
				return err
			}
			fmt.Println(string(data))
			continue
		}
		if res.Err != nil {
			fmt.Printf("%-6d %-9s %-5s %-8s %-8s %-10s %-22s error: %v\n",
				res.Point.Index, res.Point.Backend, "-", "-", "-", "-", "-", res.Err)
			continue
		}
		r := res.Report
		notes := ""
		if res.Cached {
			notes = "cached"
		}
		ejob := fmt.Sprintf("%.3f", r.EJob)
		if !r.EJobCI.Zero() {
			ejob = fmt.Sprintf("%.3f±%.3f", r.EJob, r.EJobCI.Width()/2)
		}
		fmt.Printf("%-6d %-9s %-5d %-8.4g %-8.4g %-10.4f %-22s %s\n",
			res.Point.Index, res.Point.Backend, r.W, r.U, r.TaskRatio, r.WeightedEfficiency, ejob, notes)
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("sweep stopped after %d points: %w", done+failed, err)
	}
	if failed > 0 {
		return fmt.Errorf("sweep finished: %d points solved, %d failed", done, failed)
	}
	fmt.Printf("%d points solved\n", done)
	return nil
}

// sweepFrontier runs the adaptive-refinement half of cmdSweep: cells stream
// in level order as they resolve, followed by the probe-count stats line —
// the adaptive saving over the equivalent dense grid, printed for audit.
func sweepFrontier(path string, workers int, timeout time.Duration, asJSON bool) error {
	spec, err := feasim.LoadFrontier(path)
	if err != nil {
		return err
	}
	if workers > 0 {
		spec.Workers = workers
	}
	ctx, cancel := solveContext(timeout)
	defer cancel()
	ch, stats, err := feasim.RunFrontier(ctx, spec)
	if err != nil {
		return err
	}
	if !asJSON {
		fmt.Printf("%-6s %-10s %-22s %-22s %s\n", "depth", "cell", "x range", "y range", "verdict")
	}
	cells := 0
	for c := range ch {
		cells++
		if asJSON {
			data, err := json.Marshal(c)
			if err != nil {
				return err
			}
			fmt.Println(string(data))
			continue
		}
		verdict := c.Verdict
		if c.Error != "" {
			verdict += ": " + c.Error
		}
		fmt.Printf("%-6d %-10s %-22s %-22s %s\n",
			c.Depth, fmt.Sprintf("%d,%d", c.IX, c.IY),
			fmt.Sprintf("[%.4g, %.4g]", c.X0, c.X1),
			fmt.Sprintf("[%.4g, %.4g]", c.Y0, c.Y1), verdict)
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("frontier sweep stopped after %d cells: %w", cells, err)
	}
	st := stats()
	if asJSON {
		data, err := json.Marshal(struct {
			Done  bool                 `json:"done"`
			Stats feasim.FrontierStats `json:"stats"`
		}{true, st})
		if err != nil {
			return err
		}
		fmt.Println(string(data))
	} else {
		fmt.Printf("resolution %d: %d cells (%d boundary), %d probes vs %d dense\n",
			st.Resolution, st.Cells, st.Boundary, st.Evaluations, st.DenseEvaluations)
	}
	if st.Failed > 0 {
		return fmt.Errorf("frontier sweep finished: %d cells failed to classify", st.Failed)
	}
	return nil
}

// modelFlags registers the shared model parameters on a flag set.
func modelFlags(fs *flag.FlagSet) (j *float64, w *int, o, util *float64) {
	j = fs.Float64("j", 1000, "total job demand J (time units)")
	w = fs.Int("w", 60, "number of workstations W")
	o = fs.Float64("o", 10, "owner burst demand O (time units)")
	util = fs.Float64("util", 0.05, "owner utilization U in [0,1)")
	return
}

func buildParams(j float64, w int, o, util float64) (feasim.Params, error) {
	return feasim.ParamsFromUtilization(j, w, o, util)
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	j, w, o, util := modelFlags(fs)
	fs.Parse(args)
	p, err := buildParams(*j, *w, *o, *util)
	if err != nil {
		return err
	}
	r, err := feasim.Analyze(p)
	if err != nil {
		return err
	}
	fmt.Printf("model: J=%g W=%d O=%g P=%.6g (owner utilization %.4g)\n", p.J, p.W, p.O, p.P, r.U)
	fmt.Printf("  task demand T          %12.4f\n", r.T)
	fmt.Printf("  task ratio T/O         %12.4f\n", r.Metrics.TaskRatio)
	fmt.Printf("  E[task time]           %12.4f\n", r.ETask)
	fmt.Printf("  E[job time]            %12.4f\n", r.EJob)
	fmt.Printf("  speedup                %12.4f\n", r.Speedup)
	fmt.Printf("  efficiency             %12.4f\n", r.Efficiency)
	fmt.Printf("  weighted speedup       %12.4f\n", r.WeightedSpeedup)
	fmt.Printf("  weighted efficiency    %12.4f\n", r.WeightedEfficiency)
	return nil
}

func cmdAssess(args []string) error {
	fs := flag.NewFlagSet("assess", flag.ExitOnError)
	j, w, o, util := modelFlags(fs)
	target := fs.Float64("target", 0.8, "target weighted efficiency")
	fs.Parse(args)
	p, err := buildParams(*j, *w, *o, *util)
	if err != nil {
		return err
	}
	v, err := feasim.Assess(p, *target)
	if err != nil {
		return err
	}
	verdict := "FEASIBLE"
	if !v.Feasible {
		verdict = "NOT FEASIBLE"
	}
	fmt.Printf("%s: weighted efficiency %.3f vs target %.3f\n", verdict, v.WeightedEfficiency, v.Target)
	fmt.Printf("  current task ratio  %.2f\n", v.Result.Metrics.TaskRatio)
	fmt.Printf("  required task ratio %d\n", v.MinRatio)
	fmt.Printf("  required job demand %.0f (current %.0f)\n", v.MinJobDemand, p.J)
	return nil
}

func cmdThreshold(args []string) error {
	fs := flag.NewFlagSet("threshold", flag.ExitOnError)
	w := fs.Int("w", 60, "number of workstations")
	o := fs.Float64("o", 10, "owner burst demand")
	target := fs.Float64("target", 0.8, "target weighted efficiency")
	utilsArg := fs.String("utils", "0.05,0.1,0.2", "comma-separated owner utilizations")
	fs.Parse(args)
	var utils []float64
	for _, s := range strings.Split(*utilsArg, ",") {
		u, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return fmt.Errorf("bad utilization %q: %v", s, err)
		}
		utils = append(utils, u)
	}
	rows, err := feasim.ThresholdTable(*w, *o, *target, utils)
	if err != nil {
		return err
	}
	fmt.Printf("minimum task ratio for weighted efficiency >= %.2f (W=%d, O=%g)\n", *target, *w, *o)
	fmt.Printf("%-12s %-10s %s\n", "utilization", "ratio", "achieved weff")
	for _, r := range rows {
		fmt.Printf("%-12.4g %-10d %.4f\n", r.Util, r.MinRatio, r.WeightedEff)
	}
	return nil
}

func cmdScaled(args []string) error {
	fs := flag.NewFlagSet("scaled", flag.ExitOnError)
	t := fs.Float64("t", 100, "fixed per-task demand T (J = T*W)")
	o := fs.Float64("o", 10, "owner burst demand")
	util := fs.Float64("util", 0.1, "owner utilization")
	maxw := fs.Int("maxw", 100, "largest system size")
	fs.Parse(args)
	var ws []int
	for w := 1; w <= *maxw; w *= 2 {
		ws = append(ws, w)
	}
	if ws[len(ws)-1] != *maxw {
		ws = append(ws, *maxw)
	}
	pts, err := feasim.ScaledSweep(*t, *o, *util, ws)
	if err != nil {
		return err
	}
	fmt.Printf("memory-bounded scaleup: T=%g, O=%g, util=%g\n", *t, *o, *util)
	fmt.Printf("%-6s %-12s %-22s %s\n", "W", "E[job time]", "increase vs dedicated", "increase vs W=1")
	for _, pt := range pts {
		fmt.Printf("%-6d %-12.3f %-22s %s\n", pt.W, pt.Result.EJob,
			fmt.Sprintf("%+.1f%%", pt.IncreaseVsDedicated*100),
			fmt.Sprintf("%+.1f%%", pt.IncreaseVsSingle*100))
	}
	return nil
}

func cmdSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	j, w, o, util := modelFlags(fs)
	seed := fs.Uint64("seed", 1993, "random seed")
	batches := fs.Int("batches", 20, "batch count (paper: 20)")
	batchSize := fs.Int("batchsize", 1000, "batch size (paper: 1000)")
	fs.Parse(args)
	p, err := buildParams(*j, *w, *o, *util)
	if err != nil {
		return err
	}
	pr := feasim.Protocol{Batches: *batches, BatchSize: *batchSize, Level: 0.90, MaxRel: 0.01, MaxSamples: 2_000_000}
	run, ana, ok, err := feasim.ValidateAgainstAnalysis(p, pr, *seed, 0.5)
	if err != nil {
		return err
	}
	fmt.Printf("simulation (%d samples, 90%% CIs):\n", run.Samples)
	fmt.Printf("  E[job time]  analysis %10.4f   simulated %v\n", ana.EJob, run.JobTime)
	fmt.Printf("  E[task time] analysis %10.4f   simulated %v\n", ana.ETask, run.MeanTask)
	if ok {
		fmt.Println("  analysis within simulation confidence intervals ✓")
	} else {
		fmt.Println("  analysis OUTSIDE simulation confidence intervals ✗")
	}
	return nil
}
