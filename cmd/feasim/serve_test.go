package main

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"feasim"
)

// stripVolatile removes fields that legitimately differ between two solves
// of the same query (wall-clock timings) so answers can be compared deeply.
func stripVolatile(v any) any {
	switch t := v.(type) {
	case map[string]any:
		out := make(map[string]any, len(t))
		for k, val := range t {
			if k == "elapsed_ns" {
				continue
			}
			out[k] = stripVolatile(val)
		}
		return out
	case []any:
		out := make([]any, len(t))
		for i, val := range t {
			out[i] = stripVolatile(val)
		}
		return out
	default:
		return v
	}
}

// TestServeSmoke is the serve-smoke gate (make serve-smoke): start the real
// server on a loopback socket, fire one query per kind from the checked-in
// goldens, and require the HTTP answer to match the CLI `feasim query -json`
// answer byte-for-byte (modulo wall-clock timings) — proof that the HTTP and
// CLI paths answer in lockstep.
func TestServeSmoke(t *testing.T) {
	srv, err := feasim.NewQueryServer(feasim.ServeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-serveDone; err != http.ErrServerClosed {
			t.Errorf("Serve returned %v", err)
		}
	}()
	url := "http://" + ln.Addr().String() + "/v1/query"

	for _, kind := range []string{"report", "threshold", "partition", "distribution", "scaled", "timeline"} {
		t.Run(kind, func(t *testing.T) {
			path := filepath.Join("testdata", "query_"+kind+".json")

			// The CLI path: feasim query -json <file> on the same backend.
			cliOut := captureStdout(t, func() error { return cmdQuery([]string{"-json", path}) })
			var cli struct {
				Kind   string          `json:"kind"`
				Answer json.RawMessage `json:"answer"`
			}
			if err := json.Unmarshal([]byte(cliOut), &cli); err != nil {
				t.Fatalf("CLI output: %v", err)
			}

			// The HTTP path: the same envelope POSTed to the server.
			env, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.Post(url, "application/json", strings.NewReader(string(env)))
			if err != nil {
				t.Fatal(err)
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
			var served struct {
				Kind   string          `json:"kind"`
				Answer json.RawMessage `json:"answer"`
			}
			if err := json.Unmarshal(body, &served); err != nil {
				t.Fatal(err)
			}

			if cli.Kind != kind || served.Kind != kind {
				t.Errorf("kinds: CLI %q, HTTP %q, want %q", cli.Kind, served.Kind, kind)
			}
			var cliAns, servedAns any
			if err := json.Unmarshal(cli.Answer, &cliAns); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(served.Answer, &servedAns); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(stripVolatile(cliAns), stripVolatile(servedAns)) {
				t.Errorf("HTTP and CLI answers diverge for %s:\n CLI:  %s\n HTTP: %s", kind, cli.Answer, served.Answer)
			}
		})
	}
}

// TestCmdServeErrors covers the validation paths: stray args, bad protocol,
// unusable listen address and unknown default backend must all fail before
// serving.
func TestCmdServeErrors(t *testing.T) {
	discardStdout(t)
	if err := cmdServe([]string{"stray"}); err == nil {
		t.Error("stray positional argument should error")
	}
	if err := cmdServe([]string{"-protocol", "20"}); err == nil {
		t.Error("malformed protocol should error")
	}
	if err := cmdServe([]string{"-backend", "csim"}); err == nil {
		t.Error("unknown default backend should error")
	}
	if err := cmdServe([]string{"-addr", "256.0.0.1:bad"}); err == nil {
		t.Error("unusable listen address should error")
	}
}
