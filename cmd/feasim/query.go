package main

// The query subcommand answers a typed query envelope file — any of the
// paper's question kinds ("report", "threshold", "partition",
// "distribution", "scaled", "timeline") — with any capable backend. With -batch the
// file holds a JSON array of envelopes, answered concurrently through a
// shared answer cache (duplicates solve once), mirroring the HTTP service's
// POST /v1/batch.

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"feasim"
)

// cmdQuery answers one query envelope file with the selected backend(s).
func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	backend := fs.String("backend", "analytic", `solver backend: analytic, exact, des, or "all" (every capable backend)`)
	protocol := fs.String("protocol", "", "simulation protocol as batches,batchsize (default: the paper's 20,1000)")
	warmup := fs.Int("warmup", 0, "DES warmup job count (0 = default, negative disables)")
	timeout := fs.Duration("timeout", 0, "overall deadline for the solve (0 = none)")
	asJSON := fs.Bool("json", false, "emit answers as JSON")
	batch := fs.Bool("batch", false, "the file holds a JSON array of envelopes, answered concurrently with per-item results")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("query: want exactly one query envelope JSON file, got %d args", fs.NArg())
	}
	pr0, err := parseProtocol(*protocol)
	if err != nil {
		return err
	}
	if *batch {
		if *backend == "all" {
			return fmt.Errorf("query: -batch answers with one backend (got -backend all)")
		}
		return runBatchQuery(fs.Arg(0), *backend, feasim.SolverOptions{Protocol: pr0, Warmup: *warmup}, *timeout, *asJSON)
	}
	q, err := feasim.LoadQuery(fs.Arg(0))
	if err != nil {
		return err
	}
	pr := pr0
	all := *backend == "all"
	backends := []string{*backend}
	if all {
		backends = feasim.Backends()
	}
	ctx, cancel := solveContext(*timeout)
	defer cancel()
	for _, name := range backends {
		solver, err := feasim.NewSolver(name, feasim.SolverOptions{Protocol: pr, Warmup: *warmup})
		if err != nil {
			return err
		}
		a, err := solver.Answer(ctx, q)
		if errors.Is(err, feasim.ErrUnsupported) && all {
			fmt.Printf("%s: skipped (%q queries unsupported)\n", name, q.Kind())
			continue
		}
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if *asJSON {
			data, err := json.MarshalIndent(struct {
				Kind   string        `json:"kind"`
				Answer feasim.Answer `json:"answer"`
			}{a.Kind(), a}, "", "  ")
			if err != nil {
				return err
			}
			fmt.Println(string(data))
		} else {
			printAnswer(a)
		}
	}
	return nil
}

// batchResult is one item of a -batch run, in input order.
type batchResult struct {
	ans    feasim.Answer
	cached bool
	err    error
}

// runBatchQuery answers a JSON array of envelopes concurrently through one
// CachedSolver — the CLI twin of POST /v1/batch. Items fail individually; the
// command only errors when nothing could be answered at all.
func runBatchQuery(path, backend string, opts feasim.SolverOptions, timeout time.Duration, asJSON bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var envs []json.RawMessage
	if err := json.Unmarshal(data, &envs); err != nil {
		return fmt.Errorf("query: -batch wants a JSON array of query envelopes: %w", err)
	}
	if len(envs) == 0 {
		return fmt.Errorf("query: empty batch")
	}
	inner, err := feasim.NewSolver(backend, opts)
	if err != nil {
		return err
	}
	solver := feasim.NewCachedSolver(inner, nil)
	ctx, cancel := solveContext(timeout)
	defer cancel()

	results := make([]batchResult, len(envs))
	idx := make(chan int)
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > len(envs) {
		workers = len(envs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				q, err := feasim.ParseQuery(envs[i])
				if err != nil {
					results[i] = batchResult{err: err}
					continue
				}
				a, cached, err := solver.AnswerCached(ctx, q)
				results[i] = batchResult{ans: a, cached: cached, err: err}
			}
		}()
	}
	for i := range envs {
		idx <- i
	}
	close(idx)
	wg.Wait()

	failed := 0
	if asJSON {
		type itemJSON struct {
			Kind   string        `json:"kind,omitempty"`
			Cached bool          `json:"cached,omitempty"`
			Answer feasim.Answer `json:"answer,omitempty"`
			Error  string        `json:"error,omitempty"`
		}
		items := make([]itemJSON, len(results))
		for i, r := range results {
			if r.err != nil {
				items[i] = itemJSON{Error: r.err.Error()}
				failed++
				continue
			}
			items[i] = itemJSON{Kind: r.ans.Kind(), Cached: r.cached, Answer: r.ans}
		}
		out, err := json.MarshalIndent(items, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
	} else {
		for i, r := range results {
			fmt.Printf("=== item %d\n", i)
			if r.err != nil {
				fmt.Printf("error: %v\n", r.err)
				failed++
				continue
			}
			printAnswer(r.ans)
		}
		fmt.Printf("batch: %d answered, %d failed\n", len(results)-failed, failed)
	}
	if failed == len(results) {
		return fmt.Errorf("query: every batch item failed")
	}
	return nil
}

// printAnswer renders one typed answer as aligned text.
func printAnswer(a feasim.Answer) {
	switch t := a.(type) {
	case feasim.ReportAnswer:
		printReport(t.Report)
	case feasim.ThresholdAnswer:
		fmt.Printf("threshold [%s]\n", t.Backend)
		fmt.Printf("  min task ratio         %12d\n", t.MinRatio)
		fmt.Printf("  min job demand         %12.0f\n", t.MinJobDemand)
		fmt.Printf("  achieved weff          %12.4f\n", t.AchievedWeff)
		if !t.WeffCI.Zero() {
			fmt.Printf("  weff CI at boundary    [%.4f, %.4f]\n", t.WeffCI.Lo, t.WeffCI.Hi)
		}
		if t.Probes > 0 {
			fmt.Printf("  bisection probes       %12d (%d simulated jobs)\n", t.Probes, t.Samples)
		}
	case feasim.PartitionAnswer:
		fmt.Printf("partition [%s]\n", t.Backend)
		fmt.Printf("  workstations           %12d\n", t.W)
		if t.Probes > 0 {
			fmt.Printf("  bisection probes       %12d (%d simulated jobs)\n", t.Probes, t.Samples)
		}
		printReport(t.Report)
	case feasim.DistributionAnswer:
		name := t.Scenario.Name
		if name == "" {
			name = "scenario"
		}
		fmt.Printf("distribution [%s] %s\n", t.Backend, name)
		fmt.Printf("  mean job time          %12.4f\n", t.Mean)
		fmt.Printf("  std dev                %12.4f\n", t.StdDev)
		for _, qv := range t.Quantiles {
			fmt.Printf("  q%-5.3g                 %12.4f\n", qv.Q*100, qv.Time)
		}
		for _, dv := range t.Deadlines {
			fmt.Printf("  P(done by %-9.4g)   %12.6f\n", dv.Deadline, dv.Prob)
		}
		if t.Samples > 0 {
			fmt.Printf("  samples                %12d\n", t.Samples)
		}
	case feasim.TimelineAnswer:
		name := t.Scenario.Name
		if name == "" {
			name = "scenario"
		}
		fmt.Printf("timeline [%s] %s\n", t.Backend, name)
		fmt.Printf("  cycle length           %12.4g\n", t.CycleLength)
		fmt.Printf("  mean utilization       %12.4f\n", t.MeanUtil)
		fmt.Printf("  %-10s %-12s %-8s %-10s %-12s %-10s %s\n",
			"start", "phase", "util", "mean util", "E[job]", "weff", "feasible")
		for _, ep := range t.Epochs {
			feas := "-"
			if ep.Feasible != nil {
				feas = fmt.Sprintf("%v", *ep.Feasible)
			}
			fmt.Printf("  %-10.4g %-12s %-8.3g %-10.4f %-12.4f %-10.4f %s\n",
				ep.Start, ep.Phase, ep.Util, ep.MeanUtil, ep.EJob, ep.WeightedEfficiency, feas)
		}
	case feasim.ScaledAnswer:
		fmt.Printf("scaled [%s]\n", t.Backend)
		fmt.Printf("  %-6s %-12s %-14s %-14s %s\n", "W", "E[job]", "vs dedicated", "vs W=1", "weff")
		for _, pt := range t.Points {
			fmt.Printf("  %-6d %-12.3f %-14s %-14s %.4f\n", pt.W, pt.EJob,
				fmt.Sprintf("%+.1f%%", pt.IncreaseVsDedicated*100),
				fmt.Sprintf("%+.1f%%", pt.IncreaseVsSingle*100),
				pt.WeightedEff)
		}
	default:
		fmt.Printf("%#v\n", a)
	}
}
