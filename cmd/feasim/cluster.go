package main

// The cluster subcommand inspects a running node's view of the multi-node
// answer tier: GET /v1/cluster rendered as an operator-readable table (ring
// membership, ownership fractions, peer health, forward/fallback counters)
// or passed through as JSON. It works against single-node servers too, which
// report {"enabled": false}.

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"feasim"
)

// clusterView mirrors the serve layer's /v1/cluster payload.
type clusterView struct {
	Enabled     bool                  `json:"enabled"`
	LocalSolves int64                 `json:"local_solves"`
	Rejected    int64                 `json:"rejected"`
	Panics      int64                 `json:"panics"`
	Sheds       int64                 `json:"sheds"`
	Cluster     *feasim.ClusterStatus `json:"cluster"`
}

func cmdCluster(args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "base URL of the node to inspect")
	timeout := fs.Duration("timeout", 5*time.Second, "request timeout")
	asJSON := fs.Bool("json", false, "emit the raw /v1/cluster JSON")
	fs.Parse(args)
	if fs.NArg() != 0 {
		return fmt.Errorf("cluster: unexpected arguments %v", fs.Args())
	}
	base := strings.TrimRight(*addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := &http.Client{Timeout: *timeout}
	resp, err := client.Get(base + "/v1/cluster")
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("cluster: reading response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: %s answered status %d: %s", base, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	if *asJSON {
		fmt.Println(strings.TrimSpace(string(body)))
		return nil
	}
	var view clusterView
	if err := json.Unmarshal(body, &view); err != nil {
		return fmt.Errorf("cluster: bad /v1/cluster payload: %w", err)
	}
	if !view.Enabled {
		fmt.Printf("%s: cluster mode off (single node, %d local solves)\n", base, view.LocalSolves)
		return nil
	}
	st := view.Cluster
	fmt.Printf("%s: cluster of %d (self %s, %d virtual nodes/member)\n",
		base, len(st.Members), st.Self, st.VirtualNodes)
	fmt.Printf("  local solves   %d\n", view.LocalSolves)
	fmt.Printf("  forwards       %d (%d failed, %d corrupt)\n", st.Forwards, st.ForwardErrors, st.ForwardCorrupt)
	fmt.Printf("  forwarded in   %d\n", st.ForwardedIn)
	fmt.Printf("  fallbacks      %d\n", st.Fallbacks)
	fmt.Printf("  replica hits   %d\n", st.ReplicaHits)
	fmt.Printf("  retries        %d (budget %.1f tokens, %d exhaustions)\n",
		st.Retries, st.RetryBudgetTokens, st.RetryBudgetExhausted)
	fmt.Printf("  hedges         %d (%d won, %d lost, %d local; delay %s)\n",
		st.Hedges, st.HedgesWon, st.HedgesLost, st.HedgesLocal, time.Duration(st.HedgeDelayNS))
	fmt.Printf("  overload       %d rejected, %d shed, %d panics recovered\n",
		view.Rejected, view.Sheds, view.Panics)
	fmt.Printf("  %-32s %-10s %-10s %-8s %s\n", "member", "breaker", "ownership", "fails", "forwards")
	breaker := func(m string) string {
		if m == st.Self {
			return "self"
		}
		for _, p := range st.Peers {
			if p.URL == m {
				if p.Breaker == "open" {
					return "OPEN"
				}
				return p.Breaker
			}
		}
		return "?"
	}
	for _, m := range st.Members {
		var fails int
		var fwd, fwdErr int64
		for _, p := range st.Peers {
			if p.URL == m {
				fails, fwd, fwdErr = p.ConsecutiveFails, p.Forwards, p.ForwardErrors
			}
		}
		fmt.Printf("  %-32s %-10s %-10.3f %-8d %d (%d failed)\n",
			m, breaker(m), st.Ownership[m], fails, fwd, fwdErr)
	}
	return nil
}
