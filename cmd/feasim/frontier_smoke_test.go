package main

// TestFrontierSmoke is the frontier-smoke gate (make frontier-smoke): start
// the real HTTP server on a loopback socket, stream the checked-in frontier
// spec through POST /v1/sweep?mode=frontier, and require the NDJSON cell
// stream and terminal stats to match the CLI `feasim sweep -frontier -json`
// output line for line — proof that the streamed and local adaptive
// refinements stay in lockstep.

import (
	"bufio"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"feasim"
)

func TestFrontierSmoke(t *testing.T) {
	srv, err := feasim.NewQueryServer(feasim.ServeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-serveDone; err != http.ErrServerClosed {
			t.Errorf("Serve returned %v", err)
		}
	}()

	path := filepath.Join("testdata", "sweep_frontier.json")

	// The CLI path: one JSON object per resolved cell, then the done record.
	cliOut := captureStdout(t, func() error {
		return cmdSweep([]string{"-frontier", "-json", path})
	})
	cliLines := strings.Split(strings.TrimSpace(cliOut), "\n")

	// The HTTP path: the same spec streamed as NDJSON.
	spec, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+ln.Addr().String()+"/v1/sweep?mode=frontier",
		"application/json", strings.NewReader(string(spec)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q", ct)
	}
	var httpLines []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		httpLines = append(httpLines, sc.Text())
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}

	if len(httpLines) != len(cliLines) {
		t.Fatalf("HTTP streamed %d lines, CLI printed %d", len(httpLines), len(cliLines))
	}
	for i := range cliLines {
		var cli, served any
		if err := json.Unmarshal([]byte(cliLines[i]), &cli); err != nil {
			t.Fatalf("CLI line %d %q: %v", i, cliLines[i], err)
		}
		if err := json.Unmarshal([]byte(httpLines[i]), &served); err != nil {
			t.Fatalf("HTTP line %d %q: %v", i, httpLines[i], err)
		}
		if !reflect.DeepEqual(cli, served) {
			t.Errorf("line %d diverges:\n CLI:  %s\n HTTP: %s", i, cliLines[i], httpLines[i])
		}
	}
	last := cliLines[len(cliLines)-1]
	if !strings.Contains(last, `"done":true`) {
		t.Errorf("final record is not the done/stats line: %s", last)
	}
}
