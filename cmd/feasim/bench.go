package main

// The bench subcommand runs the repository's core performance benchmarks
// in-process (via testing.Benchmark, no go toolchain needed at runtime) and
// emits a machine-readable JSON report, so CI can track the performance
// trajectory of the analytic kernel and the sweep engine across PRs.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"feasim"
	"feasim/internal/benchgrid"
	"feasim/internal/core"
)

// benchResult is one benchmark's measurements.
type benchResult struct {
	Name        string             `json:"name"`
	Iters       int                `json:"iters"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// benchReport is the BENCH_*.json schema.
type benchReport struct {
	Schema     string        `json:"schema"`
	Go         string        `json:"go"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	CPUs       int           `json:"cpus"`
	UnixTime   int64         `json:"unix_time"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// cmdBench runs the benchmark suite and writes the JSON report.
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	out := fs.String("out", "BENCH_10.json", "output JSON file")
	fs.Parse(args)
	if fs.NArg() != 0 {
		return fmt.Errorf("bench: unexpected arguments %v", fs.Args())
	}

	small, err := feasim.ParamsFromUtilization(1000, 100, 10, 0.1)
	if err != nil {
		return err
	}
	// The scaled-problem regime: T = 100k units per task (mirrors the test
	// suite's BenchmarkAnalyzeLargeT).
	large, err := feasim.ParamsFromUtilization(1e7, 100, 10, 0.1)
	if err != nil {
		return err
	}
	// The sweep grids are the canonical ones of internal/benchgrid, shared
	// with the in-repo BenchmarkSweep so the tracked artifact and the test
	// suite's benchmark measure the same workloads.
	sweepPoints := func(spec feasim.SweepSpec) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := feasim.CollectSweep(context.Background(), spec)
				if err != nil {
					b.Fatal(err)
				}
				if len(res) != benchgrid.Points {
					b.Fatalf("got %d points, want %d", len(res), benchgrid.Points)
				}
			}
			b.ReportMetric(float64(benchgrid.Points*b.N)/b.Elapsed().Seconds(), "points/s")
		}
	}

	suite := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"analyze_small", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := feasim.Analyze(small); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"analyze_large_t", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := feasim.Analyze(large); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"binomial_table_build", func(b *testing.B) {
			// A truly fresh (N, P) every iteration (P strictly increasing,
			// never repeating), so every call takes the miss path: this
			// measures build + memo insert, including the eviction the
			// bounded cache pays under a stream of distinct keys.
			for i := 0; i < b.N; i++ {
				core.Tables(100000, 0.01+float64(i)*1e-12)
			}
		}},
		{"poisson_binomial_tables", func(b *testing.B) {
			// The heterogeneous-fleet kernel on the miss path: a fresh
			// 4-class, 6400-trial mix every iteration (the jitter never
			// repeats a key), measuring the group DP build + memo insert —
			// the generalized analogue of binomial_table_build.
			for i := 0; i < b.N; i++ {
				jitter := float64(i) * 1e-12
				if _, err := core.PoissonBinomial([]core.PBGroup{
					{P: 0.02 + jitter, Count: 1600},
					{P: 0.05 + jitter, Count: 1600},
					{P: 0.08 + jitter, Count: 1600},
					{P: 0.12 + jitter, Count: 1600},
				}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"sweep_analytic_grid", sweepPoints(benchgrid.AnalyticGrid())},
		{"sweep_fixed_tp", sweepPoints(benchgrid.FixedTPGrid())},
		// The adaptive frontier path: boundary refinement to resolution 32
		// on the canonical workload. cells/s is throughput; dense_per_probe
		// records the probe-count saving over the equivalent dense grid.
		{"sweep_frontier", benchgrid.FrontierBench()},
		// The typed query path: a grid of analytic threshold bisections
		// (points/s = full searches per second, not single solves).
		{"query_threshold_grid", func(b *testing.B) {
			spec := benchgrid.ThresholdGrid()
			for i := 0; i < b.N; i++ {
				res, err := feasim.CollectQuerySweep(context.Background(), spec)
				if err != nil {
					b.Fatal(err)
				}
				if len(res) != benchgrid.ThresholdPoints {
					b.Fatalf("got %d points, want %d", len(res), benchgrid.ThresholdPoints)
				}
				for _, r := range res {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
			b.ReportMetric(float64(benchgrid.ThresholdPoints*b.N)/b.Elapsed().Seconds(), "points/s")
		}},
		// The timeline query path: the canonical 3-phase workday answered by
		// the analytic quasi-static walker at 24 epochs (points/s = epoch
		// answers per second).
		{"timeline_quasistatic", benchgrid.TimelineQuasiStaticBench()},
		// The served-query pair: one empirical (exact-sim) threshold
		// bisection through the full HTTP service. Cold varies the seed so
		// every request misses the answer cache; hit repeats one envelope,
		// so everything after the first request is an LRU hit — the
		// heavy-traffic hot case the serve layer exists for.
		{"served_query_cold", benchgrid.ServedQueryBench(false)},
		{"served_query_hit", benchgrid.ServedQueryBench(true)},
		// The batched hot path: 64 mixed envelopes per /v1/batch request,
		// all answered from the LRU after the warm request. env/s is the
		// per-envelope throughput the acceptance bar compares against
		// served_query_hit's request rate.
		{"served_batch", benchgrid.ServedBatchBench()},
		// The multi-node answer tier's added hop: every measured request
		// enters a 3-node ring at a non-home node and is served by
		// forwarding to the home's warm cache (the entry node's one-answer
		// cache keeps the replica path from absorbing the workload). Compare
		// against served_query_hit: the delta is the cost of peer routing
		// when the local replica cache misses.
		{"cluster_forward_hit", benchgrid.ClusterForwardBench()},
		// The answer-cache hot path at 1 shard (the pre-sharding
		// single-mutex baseline) vs the deployed layout (shards sized to
		// GOMAXPROCS — one shard on a 1-CPU host, so the default never pays
		// the shard hash where it cannot shed contention), uncontended (p1)
		// and with goroutine parallelism (p8). The deployed layout must not
		// lose to mutex at p1; the pinned 16-shard rows record the shard
		// hash tax and the contention relief explicitly.
		{"cache_hits_mutex_p1", benchgrid.CacheHitContentionBench(1, 1)},
		{"cache_hits_sharded_p1", benchgrid.CacheHitContentionBench(0, 1)},
		{"cache_hits_mutex_p8", benchgrid.CacheHitContentionBench(1, 8)},
		{"cache_hits_sharded_p8", benchgrid.CacheHitContentionBench(0, 8)},
		{"cache_hits_sharded16_p1", benchgrid.CacheHitContentionBench(16, 1)},
		{"cache_hits_sharded16_p8", benchgrid.CacheHitContentionBench(16, 8)},
	}

	rep := benchReport{
		Schema:   "feasim-bench/1",
		Go:       runtime.Version(),
		GOOS:     runtime.GOOS,
		GOARCH:   runtime.GOARCH,
		CPUs:     runtime.NumCPU(),
		UnixTime: time.Now().Unix(),
	}
	for _, bm := range suite {
		r := testing.Benchmark(bm.fn)
		br := benchResult{
			Name:        bm.name,
			Iters:       r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if len(r.Extra) > 0 {
			br.Extra = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				br.Extra[k] = v
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, br)
		fmt.Printf("%-22s %12.0f ns/op  %8d iters", bm.name, br.NsPerOp, br.Iters)
		for k, v := range br.Extra {
			fmt.Printf("  %.0f %s", v, k)
		}
		fmt.Println()
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}
