package main

// TestClusterSmoke is the cluster-smoke gate (make cluster-smoke): the
// out-of-process counterpart to internal/serve's in-process httptest cluster
// suite. It builds the real binary, launches three `feasim serve` processes
// on loopback in cluster mode, posts the same envelope to each node, and
// requires — via /v1/cluster — that the fleet executed exactly one solve:
// the key's home answered locally and the other two nodes forwarded.

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"feasim"
)

// freeLoopbackPorts reserves n distinct ephemeral ports. The listeners are
// closed before the serve processes bind, so a port could in principle be
// snatched in between; on a loopback-only test host that race is negligible,
// and the startup poll below catches it as a clean failure.
func freeLoopbackPorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

func TestClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and launches real processes")
	}
	bin := filepath.Join(t.TempDir(), "feasim")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	const nodes = 3
	addrs := freeLoopbackPorts(t, nodes)
	urls := make([]string, nodes)
	for i, a := range addrs {
		urls[i] = "http://" + a
	}
	for i := range addrs {
		var peers []string
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		cmd := exec.Command(bin, "serve",
			"-addr", addrs[i],
			"-self", urls[i],
			"-peers", strings.Join(peers, ","),
			"-probe-interval", "100ms",
			"-protocol", "3,50")
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
	}

	// Wait for every node to serve /v1/healthz.
	client := &http.Client{Timeout: time.Second}
	for _, u := range urls {
		deadline := time.Now().Add(10 * time.Second)
		for {
			resp, err := client.Get(u + "/v1/healthz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					break
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %s never became healthy: %v", u, err)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	// The same stochastic envelope to every node: exactly one node is the
	// key's home and solves; the others must forward to it and adopt the
	// answer. The exact-sim backend makes the key byte-cached, so this also
	// exercises the replica path end to end.
	env := `{"kind": "threshold", "w": 10, "o": 10, "util": 0.1, "target_eff": 0.8, "seed": 42}`
	var answers []string
	for _, u := range urls {
		resp, err := client.Post(u+"/v1/query?backend=exact", "application/json", strings.NewReader(env))
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("node %s: status %d: %s", u, resp.StatusCode, body)
		}
		var r struct {
			Kind   string          `json:"kind"`
			Answer json.RawMessage `json:"answer"`
		}
		if err := json.Unmarshal(body, &r); err != nil {
			t.Fatalf("node %s: %v in %s", u, err, body)
		}
		if r.Kind != "threshold" {
			t.Errorf("node %s answered kind %q", u, r.Kind)
		}
		answers = append(answers, string(r.Answer))
	}
	// All three nodes returned the identical solve (stochastic answers are
	// deterministic per seed — a re-solve would still match — so the real
	// single-solve proof is the counter audit below; this guards routing).
	for i := 1; i < len(answers); i++ {
		if answers[i] != answers[0] {
			t.Errorf("node %d answer diverges:\n  %s\n  %s", i, answers[i], answers[0])
		}
	}

	// The fleet-wide audit: /v1/cluster on every node, summing local solves
	// and forwards. Exactly one solve and two forwards means the two
	// non-home nodes routed instead of solving.
	var localSolves, forwards int64
	for _, u := range urls {
		resp, err := client.Get(u + "/v1/cluster")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		var cv struct {
			Enabled     bool                  `json:"enabled"`
			LocalSolves int64                 `json:"local_solves"`
			Cluster     *feasim.ClusterStatus `json:"cluster"`
		}
		if err := json.Unmarshal(body, &cv); err != nil {
			t.Fatalf("node %s: %v in %s", u, err, body)
		}
		if !cv.Enabled || cv.Cluster == nil {
			t.Fatalf("node %s does not report cluster mode: %s", u, body)
		}
		if len(cv.Cluster.Members) != nodes {
			t.Errorf("node %s sees %d members, want %d", u, len(cv.Cluster.Members), nodes)
		}
		localSolves += cv.LocalSolves
		forwards += cv.Cluster.Forwards
	}
	if localSolves != 1 {
		t.Errorf("fleet executed %d solves for one envelope, want exactly 1", localSolves)
	}
	if forwards != 2 {
		t.Errorf("fleet recorded %d forwards, want 2 (both non-home nodes)", forwards)
	}

	fmt.Println("cluster-smoke: 3 nodes, 1 solve, 2 forwards — single solve fleet-wide")
}
