package main

// TestChaosSmoke is the chaos-smoke gate (make chaos-smoke): three real
// `feasim serve` processes in cluster mode, one of them with every outbound
// peer request failing via -chaos. The faulty node's probes all fail, so its
// breakers open (visible through `feasim cluster`), its forwards fall back
// to local solves — and every node still answers every query correctly.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"feasim"
)

func TestChaosSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and launches real processes")
	}
	bin := filepath.Join(t.TempDir(), "feasim")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	const nodes = 3
	addrs := freeLoopbackPorts(t, nodes)
	urls := make([]string, nodes)
	for i, a := range addrs {
		urls[i] = "http://" + a
	}
	for i := range addrs {
		var peers []string
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		args := []string{"serve",
			"-addr", addrs[i],
			"-self", urls[i],
			"-peers", strings.Join(peers, ","),
			"-probe-interval", "100ms",
			"-protocol", "3,50"}
		if i == 0 {
			// Node 0's outbound peer traffic (probes and forwards) always
			// fails; its inbound serving path is untouched.
			args = append(args, "-chaos", "seed=7;error=1")
		}
		cmd := exec.Command(bin, args...)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
	}

	client := &http.Client{Timeout: time.Second}
	for _, u := range urls {
		deadline := time.Now().Add(10 * time.Second)
		for {
			resp, err := client.Get(u + "/v1/healthz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					break
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %s never became healthy: %v", u, err)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	// Node 0's failing probes must open its breakers; poll the operator view
	// the way an operator would.
	deadline := time.Now().Add(10 * time.Second)
	for {
		out, err := exec.Command(bin, "cluster", "-addr", urls[0]).CombinedOutput()
		if err != nil {
			t.Fatalf("feasim cluster: %v\n%s", err, out)
		}
		if strings.Contains(string(out), "OPEN") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("node 0's breakers never opened; last view:\n%s", out)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Every node answers every envelope correctly: node 0 cannot reach its
	// peers (open breakers skip the forward — a counted fallback), the other
	// two route normally; either way the client gets the right answer.
	for seed := 1; seed <= 8; seed++ {
		env := fmt.Sprintf(`{"kind": "threshold", "w": 10, "o": 10, "util": 0.1, "target_eff": 0.8, "seed": %d}`, seed)
		var answers []string
		for _, u := range urls {
			resp, err := client.Post(u+"/v1/query?backend=exact", "application/json", strings.NewReader(env))
			if err != nil {
				t.Fatal(err)
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("node %s seed %d: status %d: %s", u, seed, resp.StatusCode, body)
			}
			var r struct {
				Kind   string          `json:"kind"`
				Answer json.RawMessage `json:"answer"`
			}
			if err := json.Unmarshal(body, &r); err != nil {
				t.Fatalf("node %s: %v in %s", u, err, body)
			}
			answers = append(answers, string(r.Answer))
		}
		for i := 1; i < len(answers); i++ {
			if answers[i] != answers[0] {
				t.Errorf("seed %d: node %d answer diverges:\n  %s\n  %s", seed, i, answers[i], answers[0])
			}
		}
	}

	// Audit node 0: with 8 distinct keys on a 3-member ring it routed at
	// least one to a peer it cannot reach, so fallbacks must have happened —
	// and no forward can have succeeded through the chaotic transport.
	resp, err := client.Get(urls[0] + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var cv struct {
		Enabled bool                  `json:"enabled"`
		Cluster *feasim.ClusterStatus `json:"cluster"`
	}
	if err := json.Unmarshal(body, &cv); err != nil {
		t.Fatalf("%v in %s", err, body)
	}
	if !cv.Enabled || cv.Cluster == nil {
		t.Fatalf("node 0 does not report cluster mode: %s", body)
	}
	if cv.Cluster.Fallbacks < 1 {
		t.Errorf("node 0 recorded %d fallbacks, want >= 1", cv.Cluster.Fallbacks)
	}

	fmt.Println("chaos-smoke: breakers open on the faulty node, every answer correct")
}
