package main

// The serve subcommand runs the query service: the PR 3 envelope over HTTP,
// with the shared answer cache and request coalescing in front of the
// backends. See internal/serve for the endpoint and error taxonomy.

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"feasim"
)

// cmdServe starts the HTTP query service and blocks until SIGINT/SIGTERM,
// then drains in-flight requests.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	backend := fs.String("backend", "analytic", "default backend for queries without ?backend=")
	protocol := fs.String("protocol", "", "simulation protocol as batches,batchsize (default: the paper's 20,1000)")
	warmup := fs.Int("warmup", 0, "DES warmup job count (0 = default, negative disables)")
	cacheCap := fs.Int("cache", 0, "answer cache capacity (0 = default)")
	maxInFlight := fs.Int("max-inflight", 0, "concurrent request limit (0 = default)")
	reqTimeout := fs.Duration("request-timeout", time.Minute, "per-request solve deadline (negative = none)")
	sweepWorkers := fs.Int("sweep-workers", 0, "default sweep worker pool (0 = GOMAXPROCS)")
	drain := fs.Duration("drain", 10*time.Second, "graceful shutdown drain deadline")
	self := fs.String("self", "", "cluster mode: this node's advertised base URL (e.g. http://10.0.0.1:8080)")
	peers := fs.String("peers", "", "cluster mode: comma-separated base URLs of the other nodes")
	probeInterval := fs.Duration("probe-interval", 0, "cluster mode: peer health-probe period (0 = default)")
	failAfter := fs.Int("fail-after", 0, "cluster mode: consecutive probe failures before ejecting a peer (0 = default)")
	hedgeDelay := fs.Duration("hedge-delay", 0, "cluster mode: initial hedged-forward delay (0 = adaptive default, negative disables hedging)")
	shedAnalytic := fs.Bool("shed-analytic", false, "under saturation, answer stochastic queries with the analytic backend (marked degraded)")
	chaos := fs.String("chaos", "", `fault injection spec, e.g. "seed=42;latency=0.2:1ms-5ms;error=0.1;corrupt=0.1" (empty = none)`)
	fs.Parse(args)
	if fs.NArg() != 0 {
		return fmt.Errorf("serve: unexpected arguments %v", fs.Args())
	}
	pr, err := parseProtocol(*protocol)
	if err != nil {
		return err
	}
	var inj *feasim.ChaosInjector
	if *chaos != "" {
		spec, err := feasim.ParseChaosSpec(*chaos)
		if err != nil {
			return err
		}
		if inj, err = feasim.NewChaosInjector(spec); err != nil {
			return err
		}
	}
	var cluster *feasim.ServeCluster
	if *peers != "" || *self != "" {
		if *self == "" || *peers == "" {
			return fmt.Errorf("serve: cluster mode needs both -self and -peers")
		}
		cfg := feasim.ServeClusterConfig{
			Self:          *self,
			Peers:         strings.Split(*peers, ","),
			ProbeInterval: *probeInterval,
			FailAfter:     *failAfter,
			HedgeDelay:    *hedgeDelay,
		}
		if inj != nil {
			// Chaos hits this node's outbound peer traffic (probes and
			// forwards) as well as its own solves.
			cfg.Client = &http.Client{Transport: inj.Transport(nil)}
		}
		cluster, err = feasim.NewServeCluster(cfg)
		if err != nil {
			return err
		}
	}
	srv, err := feasim.NewQueryServer(feasim.ServeConfig{
		Options:        feasim.SolverOptions{Protocol: pr, Warmup: *warmup},
		CacheCapacity:  *cacheCap,
		MaxInFlight:    *maxInFlight,
		RequestTimeout: *reqTimeout,
		DefaultBackend: *backend,
		SweepWorkers:   *sweepWorkers,
		Cluster:        cluster,
		ShedAnalytic:   *shedAnalytic,
		Fault:          inj,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("feasim serve: listening on http://%s (backends %v, default %s)\n",
		ln.Addr(), srv.Backends(), *backend)
	if cluster != nil {
		fmt.Printf("feasim serve: cluster mode as %s with %d members\n",
			cluster.Self(), len(cluster.Members()))
	}
	if inj != nil {
		fmt.Printf("feasim serve: CHAOS enabled (%s)\n", *chaos)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Println("feasim serve: draining in-flight requests")
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
