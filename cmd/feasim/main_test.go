package main

import (
	"os"
	"testing"
)

// The subcommand functions print to stdout and return errors; these tests
// exercise flag parsing, parameter validation, and the happy paths.

func discardStdout(t *testing.T) {
	t.Helper()
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	t.Cleanup(func() {
		os.Stdout = old
		null.Close()
	})
}

func TestCmdAnalyze(t *testing.T) {
	discardStdout(t)
	if err := cmdAnalyze([]string{"-j", "1000", "-w", "100", "-o", "10", "-util", "0.01"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdAnalyze([]string{"-util", "1.5"}); err == nil {
		t.Error("bad utilization should error")
	}
}

func TestCmdAssess(t *testing.T) {
	discardStdout(t)
	if err := cmdAssess([]string{"-j", "600", "-w", "60", "-util", "0.2", "-target", "0.8"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdAssess([]string{"-j", "60000", "-w", "60", "-util", "0.05"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdThreshold(t *testing.T) {
	discardStdout(t)
	if err := cmdThreshold([]string{"-w", "60", "-utils", "0.05,0.1"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdThreshold([]string{"-utils", "abc"}); err == nil {
		t.Error("malformed utils should error")
	}
	if err := cmdThreshold([]string{"-utils", "1.5"}); err == nil {
		t.Error("out-of-range utilization should error")
	}
}

func TestCmdScaled(t *testing.T) {
	discardStdout(t)
	if err := cmdScaled([]string{"-t", "100", "-util", "0.1", "-maxw", "64"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdScaled([]string{"-util", "1.0"}); err == nil {
		t.Error("bad utilization should error")
	}
}

func TestCmdSimulate(t *testing.T) {
	discardStdout(t)
	// Small protocol keeps the test fast; W=50 gives integral T.
	if err := cmdSimulate([]string{"-j", "1000", "-w", "50", "-util", "0.1",
		"-batches", "5", "-batchsize", "100"}); err != nil {
		t.Fatal(err)
	}
	// Non-integral T must be rejected by the exact simulator.
	if err := cmdSimulate([]string{"-j", "1000", "-w", "3", "-util", "0.1",
		"-batches", "5", "-batchsize", "50"}); err == nil {
		t.Error("non-integral T should error")
	}
}
