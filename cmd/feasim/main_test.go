package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The subcommand functions print to stdout and return errors; these tests
// exercise flag parsing, parameter validation, and the happy paths.

func discardStdout(t *testing.T) {
	t.Helper()
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	t.Cleanup(func() {
		os.Stdout = old
		null.Close()
	})
}

// writeFile drops JSON content into a temp file and returns its path.
func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// captureStdout runs f and returns everything it printed to stdout.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	ferr := f()
	os.Stdout = old
	w.Close()
	out := <-done
	r.Close()
	if ferr != nil {
		t.Fatal(ferr)
	}
	return out
}

const testScenario = `{"name":"t","j":1000,"w":10,"o":10,"util":0.05,"target_eff":0.8,"seed":7}`

func TestCmdRun(t *testing.T) {
	discardStdout(t)
	path := writeFile(t, "scenario.json", testScenario)
	// All three backends on one scenario; a small protocol keeps it fast.
	if err := cmdRun([]string{"-protocol", "5,100", path}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRun([]string{"-backend", "analytic", "-json", path}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRun([]string{"-backend", "csim", path}); err == nil {
		t.Error("unknown backend should error")
	}
	if err := cmdRun([]string{path, "extra"}); err == nil {
		t.Error("extra args should error")
	}
	if err := cmdRun([]string{filepath.Join(t.TempDir(), "missing.json")}); err == nil {
		t.Error("missing file should error")
	}
	if err := cmdRun([]string{"-protocol", "20", path}); err == nil {
		t.Error("malformed protocol should error")
	}
	bad := writeFile(t, "bad.json", `{"j": 100, "w": 10, "o": 10, "wiggle": 1}`)
	if err := cmdRun([]string{bad}); err == nil {
		t.Error("unknown scenario field should error")
	}
}

func TestCmdSweep(t *testing.T) {
	discardStdout(t)
	path := writeFile(t, "sweep.json", `{
		"base": {"j": 1000, "w": 10, "o": 10, "seed": 3},
		"util": [0.05, 0.1],
		"task_ratio": [5, 10],
		"backends": ["analytic", "exact"],
		"protocol": {"Batches": 5, "BatchSize": 100, "Level": 0.9}
	}`)
	if err := cmdSweep([]string{"-workers", "2", path}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSweep([]string{"-json", path}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSweep([]string{}); err == nil {
		t.Error("missing spec file should error")
	}
	bad := writeFile(t, "bad.json", `{"base": {"j": 1000, "w": 10, "o": 10}, "backends": ["csim"]}`)
	if err := cmdSweep([]string{bad}); err == nil {
		t.Error("unknown backend should error")
	}
	// Every point fails (T = 1000/7 is not integral): the summary must
	// surface that as an error rather than reporting success.
	failing := writeFile(t, "failing.json",
		`{"base": {"j": 1000, "w": 7, "o": 10, "util": 0.05}, "backends": ["exact"]}`)
	if err := cmdSweep([]string{failing}); err == nil {
		t.Error("sweep with failed points should error")
	}
}

// TestCmdSweepFrontierGolden runs the checked-in frontier spec (analytic,
// fixed seed — fully deterministic, including the level-order stream) and
// compares the rendered cell table against the golden file. Regenerate with:
//
//	go run ./cmd/feasim sweep -frontier cmd/feasim/testdata/sweep_frontier.json \
//	    > cmd/feasim/testdata/sweep_frontier.golden
func TestCmdSweepFrontierGolden(t *testing.T) {
	in := filepath.Join("testdata", "sweep_frontier.json")
	out := captureStdout(t, func() error { return cmdSweep([]string{"-frontier", in}) })
	want, err := os.ReadFile(filepath.Join("testdata", "sweep_frontier.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if out != string(want) {
		t.Errorf("frontier golden mismatch:\n--- got ---\n%s--- want ---\n%s", out, want)
	}
}

func TestCmdSweepFrontier(t *testing.T) {
	discardStdout(t)
	in := filepath.Join("testdata", "sweep_frontier.json")
	if err := cmdSweep([]string{"-frontier", "-json", "-workers", "2", in}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSweep([]string{"-frontier"}); err == nil {
		t.Error("missing spec file should error")
	}
	// A grid sweep spec is not a frontier spec: the axis declarations are
	// missing, and the loader must say so instead of running a degenerate
	// search.
	grid := writeFile(t, "grid.json", `{"base": {"j": 1000, "w": 10, "o": 10}, "util": [0.05]}`)
	if err := cmdSweep([]string{"-frontier", grid}); err == nil {
		t.Error("grid spec under -frontier should error")
	}
	// The explicit-station/task_ratio rejection reaches the CLI too.
	explicit := writeFile(t, "explicit.json", `{
		"base": {"kind": "report", "scenario": {
			"stations": [{"owner_think": "exp:90", "owner_demand": "det:10"}],
			"task_demand": "det:100", "target_eff": 0.8}},
		"x": {"axis": "util", "min": 0.05, "max": 0.2},
		"y": {"axis": "task_ratio", "min": 5, "max": 20}}`)
	err := cmdSweep([]string{"-frontier", explicit})
	if err == nil || !strings.Contains(err.Error(), "explicit-station") {
		t.Errorf("explicit-station ratio axis should be rejected loudly, got %v", err)
	}
}

// TestCmdQueryGoldens answers every query kind's checked-in envelope with
// the (deterministic) analytic backend and compares the rendered text
// against the golden files. Regenerate with:
//
//	go run ./cmd/feasim query cmd/feasim/testdata/query_<kind>.json \
//	    > cmd/feasim/testdata/query_<kind>.golden
func TestCmdQueryGoldens(t *testing.T) {
	// "fleet" and "fleet_threshold" are heterogeneous spellings of the
	// report and threshold kinds: per-station availability/speed instead of
	// the aggregate util.
	for _, kind := range []string{"report", "threshold", "partition", "distribution", "scaled", "timeline", "fleet", "fleet_threshold"} {
		t.Run(kind, func(t *testing.T) {
			in := filepath.Join("testdata", "query_"+kind+".json")
			out := captureStdout(t, func() error { return cmdQuery([]string{in}) })
			want, err := os.ReadFile(filepath.Join("testdata", "query_"+kind+".golden"))
			if err != nil {
				t.Fatal(err)
			}
			if out != string(want) {
				t.Errorf("golden mismatch for %s:\n--- got ---\n%s--- want ---\n%s", kind, out, want)
			}
		})
	}
}

func TestCmdQuery(t *testing.T) {
	discardStdout(t)
	// The exact backend answers thresholds empirically by bisection; a small
	// protocol keeps it fast.
	path := filepath.Join("testdata", "query_threshold.json")
	if err := cmdQuery([]string{"-backend", "exact", "-protocol", "5,100", path}); err != nil {
		t.Fatal(err)
	}
	// JSON emission on the analytic backend.
	if err := cmdQuery([]string{"-json", path}); err != nil {
		t.Fatal(err)
	}
	// -backend all must skip incapable backends, not fail: scaled is
	// analytic-only.
	scaled := filepath.Join("testdata", "query_scaled.json")
	if err := cmdQuery([]string{"-backend", "all", scaled}); err != nil {
		t.Fatal(err)
	}
	// A single incapable backend is an error.
	if err := cmdQuery([]string{"-backend", "des", scaled}); err == nil {
		t.Error("des backend on a scaled query should error")
	}
	if err := cmdQuery([]string{"-backend", "csim", path}); err == nil {
		t.Error("unknown backend should error")
	}
	if err := cmdQuery([]string{}); err == nil {
		t.Error("missing envelope file should error")
	}
	// Unknown kind and unknown fields must fail loudly.
	badKind := writeFile(t, "badkind.json", `{"kind": "optimise", "w": 10}`)
	if err := cmdQuery([]string{badKind}); err == nil {
		t.Error("unknown query kind should error")
	}
	badField := writeFile(t, "badfield.json", `{"kind": "threshold", "w": 10, "o": 10, "util": 0.1, "target_eff": 0.8, "wiggle": 1}`)
	if err := cmdQuery([]string{badField}); err == nil {
		t.Error("unknown envelope field should error")
	}
	noKind := writeFile(t, "nokind.json", `{"w": 10, "o": 10}`)
	if err := cmdQuery([]string{noKind}); err == nil {
		t.Error("missing kind should error")
	}
}

// TestCmdQueryBatchGolden answers the checked-in envelope array with the
// deterministic analytic backend and compares the rendered text against the
// golden file. Regenerate with:
//
//	go run ./cmd/feasim query -batch cmd/feasim/testdata/query_batch.json \
//	    > cmd/feasim/testdata/query_batch.golden
func TestCmdQueryBatchGolden(t *testing.T) {
	in := filepath.Join("testdata", "query_batch.json")
	out := captureStdout(t, func() error { return cmdQuery([]string{"-batch", in}) })
	want, err := os.ReadFile(filepath.Join("testdata", "query_batch.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if out != string(want) {
		t.Errorf("batch golden mismatch:\n--- got ---\n%s--- want ---\n%s", out, want)
	}
}

func TestCmdQueryBatch(t *testing.T) {
	discardStdout(t)
	// Partial failure: the malformed middle item fails alone; the command
	// still succeeds because its neighbors answered.
	mixed := writeFile(t, "mixed.json", `[
		{"kind": "threshold", "w": 10, "o": 10, "util": 0.1, "target_eff": 0.8},
		{"kind": "bogus"},
		{"kind": "scaled", "t": 100, "o": 10, "util": 0.1, "ws": [1, 10]}
	]`)
	if err := cmdQuery([]string{"-batch", mixed}); err != nil {
		t.Errorf("partially failing batch should still succeed: %v", err)
	}
	// JSON emission.
	if err := cmdQuery([]string{"-batch", "-json", mixed}); err != nil {
		t.Fatal(err)
	}
	// All items failing is a command failure.
	allBad := writeFile(t, "allbad.json", `[{"kind": "bogus"}, {"kind": "worse"}]`)
	if err := cmdQuery([]string{"-batch", allBad}); err == nil {
		t.Error("batch with every item failing should error")
	}
	// The array shell must validate.
	notArray := writeFile(t, "notarray.json", `{"kind": "threshold", "w": 10, "o": 10, "util": 0.1, "target_eff": 0.8}`)
	if err := cmdQuery([]string{"-batch", notArray}); err == nil {
		t.Error("-batch on a non-array file should error")
	}
	empty := writeFile(t, "empty.json", `[]`)
	if err := cmdQuery([]string{"-batch", empty}); err == nil {
		t.Error("empty batch should error")
	}
	if err := cmdQuery([]string{"-batch", "-backend", "all", mixed}); err == nil {
		t.Error("-batch with -backend all should error")
	}
}

func TestCmdRunWarmupFlag(t *testing.T) {
	discardStdout(t)
	path := writeFile(t, "scenario.json", testScenario)
	if err := cmdRun([]string{"-backend", "des", "-warmup", "5", "-protocol", "5,100", path}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdAnalyze(t *testing.T) {
	discardStdout(t)
	if err := cmdAnalyze([]string{"-j", "1000", "-w", "100", "-o", "10", "-util", "0.01"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdAnalyze([]string{"-util", "1.5"}); err == nil {
		t.Error("bad utilization should error")
	}
}

func TestCmdAssess(t *testing.T) {
	discardStdout(t)
	if err := cmdAssess([]string{"-j", "600", "-w", "60", "-util", "0.2", "-target", "0.8"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdAssess([]string{"-j", "60000", "-w", "60", "-util", "0.05"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdThreshold(t *testing.T) {
	discardStdout(t)
	if err := cmdThreshold([]string{"-w", "60", "-utils", "0.05,0.1"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdThreshold([]string{"-utils", "abc"}); err == nil {
		t.Error("malformed utils should error")
	}
	if err := cmdThreshold([]string{"-utils", "1.5"}); err == nil {
		t.Error("out-of-range utilization should error")
	}
}

func TestCmdScaled(t *testing.T) {
	discardStdout(t)
	if err := cmdScaled([]string{"-t", "100", "-util", "0.1", "-maxw", "64"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdScaled([]string{"-util", "1.0"}); err == nil {
		t.Error("bad utilization should error")
	}
}

func TestCmdSimulate(t *testing.T) {
	discardStdout(t)
	// Small protocol keeps the test fast; W=50 gives integral T.
	if err := cmdSimulate([]string{"-j", "1000", "-w", "50", "-util", "0.1",
		"-batches", "5", "-batchsize", "100"}); err != nil {
		t.Fatal(err)
	}
	// Non-integral T must be rejected by the exact simulator.
	if err := cmdSimulate([]string{"-j", "1000", "-w", "3", "-util", "0.1",
		"-batches", "5", "-batchsize", "50"}); err == nil {
		t.Error("non-integral T should error")
	}
}

func TestCmdBenchDiff(t *testing.T) {
	oldRep := writeFile(t, "old.json", `{"schema": "feasim-bench/1", "benchmarks": [
		{"name": "a", "ns_per_op": 100},
		{"name": "b", "ns_per_op": 100},
		{"name": "gone", "ns_per_op": 5}
	]}`)
	newRep := writeFile(t, "new.json", `{"schema": "feasim-bench/1", "benchmarks": [
		{"name": "a", "ns_per_op": 150},
		{"name": "b", "ns_per_op": 90},
		{"name": "fresh", "ns_per_op": 7}
	]}`)
	out := captureStdout(t, func() error { return cmdBenchDiff([]string{oldRep, newRep}) })
	for _, want := range []string{"REGRESSION", "+50.0%", "-10.0%", "| fresh | — |", "| gone |", "1 benchmark(s) regressed"} {
		if !strings.Contains(out, want) {
			t.Errorf("benchdiff output missing %q:\n%s", want, out)
		}
	}
	// A looser threshold clears the regression.
	out = captureStdout(t, func() error { return cmdBenchDiff([]string{"-threshold", "0.6", oldRep, newRep}) })
	if strings.Contains(out, "REGRESSION") {
		t.Errorf("threshold 0.6 should clear the +50%% delta:\n%s", out)
	}
	if err := cmdBenchDiff([]string{oldRep}); err == nil {
		t.Error("one file should error")
	}
	if err := cmdBenchDiff([]string{oldRep, filepath.Join(t.TempDir(), "missing.json")}); err == nil {
		t.Error("missing file should error")
	}
}

func TestCmdBenchRejectsArgs(t *testing.T) {
	// The full bench run takes ~10s of wall clock; tests only cover the
	// argument validation path.
	if err := cmdBench([]string{"stray"}); err == nil {
		t.Error("stray positional argument should error")
	}
}
