// Command clustersim runs the general (DES-based) simulator with arbitrary
// owner and task distributions — the paper's stated future work on
// higher-variance service demands and load imbalance.
//
// Distributions use the spec syntax of feasim.ParseDist:
//
//	det:10  exp:10  erlang:4,10  hyper:0.1,55,5  pareto:6,2.5  geom:0.01  unif:5,15
//
// Usage:
//
//	clustersim -w 12 -task det:100 -think geom:0.0034 -owner det:10 -samples 20000
//	clustersim -w 12 -task unif:50,150 -think exp:300 -owner hyper:0.9,5,55
//	clustersim -w 4 -task det:100 -owner det:10 \
//	    -workday morning:480:0.15,afternoon:480:0.3,night:480:0.02
//
// The tool prints the measured job-time CI and, when the workload matches
// the paper's model shape (deterministic tasks and owner bursts), the
// analytic prediction for comparison.
//
// With -workday the owners follow a repeating utilization schedule instead
// of a stationary think/burst loop. That experiment is not run against the
// raw simulator: it is phrased as a {"kind": "timeline"} query and answered
// through the Query API — the same envelope `feasim query` and the HTTP
// service accept — with the analytic quasi-static walker and the DES replay
// side by side.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"feasim"
)

func main() {
	w := flag.Int("w", 12, "number of workstations")
	taskSpec := flag.String("task", "det:100", "per-task demand distribution")
	thinkSpec := flag.String("think", "geom:0.01", "owner think-time distribution (wall clock)")
	ownerSpec := flag.String("owner", "det:10", "owner burst demand distribution")
	workday := flag.String("workday", "", "owner workday phases as name:duration:util,... — answered as a timeline query through the Query API")
	samples := flag.Int("samples", 20000, "measured job executions (with -workday: DES replications per epoch)")
	warmup := flag.Int("warmup", 50, "discarded warmup jobs")
	seed := flag.Uint64("seed", 1993, "random seed")
	flag.Parse()

	var err error
	if *workday != "" {
		err = runWorkday(*w, *taskSpec, *ownerSpec, *workday, *samples, *seed)
	} else {
		err = run(*w, *taskSpec, *thinkSpec, *ownerSpec, *samples, *warmup, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "clustersim:", err)
		os.Exit(1)
	}
}

// parseWorkday parses "name:duration:util,..." (name optional) into the
// scenario schedule form.
func parseWorkday(spec string) ([]feasim.PhaseSpec, error) {
	var phases []feasim.PhaseSpec
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		var ph feasim.PhaseSpec
		switch len(fields) {
		case 3:
			ph.Name = fields[0]
			fields = fields[1:]
		case 2:
		default:
			return nil, fmt.Errorf("bad workday phase %q: want name:duration:util", part)
		}
		var err error
		if ph.Duration, err = strconv.ParseFloat(fields[0], 64); err != nil {
			return nil, fmt.Errorf("bad workday phase %q: %v", part, err)
		}
		if ph.Util, err = strconv.ParseFloat(fields[1], 64); err != nil {
			return nil, fmt.Errorf("bad workday phase %q: %v", part, err)
		}
		phases = append(phases, ph)
	}
	return phases, nil
}

// runWorkday phrases the non-stationary experiment as a timeline query and
// answers it with every capable backend — the CLI goes through the same
// Query API as `feasim query` and the HTTP service instead of driving the
// simulator directly.
func runWorkday(w int, taskSpec, ownerSpec, workdaySpec string, samples int, seed uint64) error {
	task, err := feasim.ParseDist(taskSpec)
	if err != nil {
		return err
	}
	owner, err := feasim.ParseDist(ownerSpec)
	if err != nil {
		return err
	}
	taskDet, dok := task.(feasim.Deterministic)
	ownerDet, ook := owner.(feasim.Deterministic)
	if !dok || !ook {
		return fmt.Errorf("-workday needs the paper's workload shape: deterministic -task and -owner (got %s, %s)", task, owner)
	}
	phases, err := parseWorkday(workdaySpec)
	if err != nil {
		return err
	}
	q := feasim.TimelineQuery{
		Scenario: feasim.Scenario{
			Name:     "workday",
			J:        taskDet.V * float64(w),
			W:        w,
			O:        ownerDet.V,
			Seed:     seed,
			Schedule: phases,
		},
		Samples: samples,
	}
	if err := q.Validate(); err != nil {
		return err
	}
	ctx := context.Background()
	for _, name := range feasim.Backends() {
		solver, err := feasim.NewSolver(name, feasim.SolverOptions{})
		if err != nil {
			return err
		}
		a, err := solver.Answer(ctx, q)
		if err != nil {
			continue // backend without timeline support
		}
		t := a.(feasim.TimelineAnswer)
		fmt.Printf("timeline [%s]: W=%d J=%g O=%g cycle=%g mean util %.4f\n",
			name, w, q.Scenario.J, q.Scenario.O, t.CycleLength, t.MeanUtil)
		for _, ep := range t.Epochs {
			line := fmt.Sprintf("  t=%-8.4g %-12s util=%-7.3g E[job]=%-10.3f weff=%.4f",
				ep.Start, ep.Phase, ep.Util, ep.EJob, ep.WeightedEfficiency)
			if ep.Samples > 0 {
				line += fmt.Sprintf("  (%d reps, CI [%.1f, %.1f])", ep.Samples, ep.EJobCI.Lo, ep.EJobCI.Hi)
			}
			fmt.Println(line)
		}
	}
	return nil
}

func run(w int, taskSpec, thinkSpec, ownerSpec string, samples, warmup int, seed uint64) error {
	task, err := feasim.ParseDist(taskSpec)
	if err != nil {
		return err
	}
	think, err := feasim.ParseDist(thinkSpec)
	if err != nil {
		return err
	}
	owner, err := feasim.ParseDist(ownerSpec)
	if err != nil {
		return err
	}

	cfg := feasim.GeneralConfig{
		TaskDemand: task,
		Seed:       seed,
		WarmupJobs: warmup,
	}
	for i := 0; i < w; i++ {
		cfg.Stations = append(cfg.Stations, feasim.StationWorkload{
			OwnerThink:  think,
			OwnerDemand: owner,
		})
	}
	g, err := feasim.NewGeneralSimulator(cfg)
	if err != nil {
		return err
	}

	pr := feasim.Protocol{
		Batches:    20,
		BatchSize:  samples / 20,
		Level:      0.90,
		MaxSamples: int64(4 * samples),
	}
	if pr.BatchSize < 1 {
		pr.BatchSize = 1
	}
	res, err := feasim.RunGeneral(g, pr)
	if err != nil {
		return err
	}

	fmt.Printf("general simulator: W=%d task=%s think=%s owner=%s\n", w, task, think, owner)
	fmt.Printf("  configured owner utilization %.4f, observed %.4f\n",
		cfg.MeanUtilization(), res.ObservedUtil)
	fmt.Printf("  samples %d\n", res.Samples)
	fmt.Printf("  E[job time]  %v\n", res.JobTime)
	fmt.Printf("  E[task time] %v\n", res.MeanTask)

	// When the workload is the paper's shape, show the analytic bound.
	taskDet, dok := task.(feasim.Deterministic)
	ownerDet, ook := owner.(feasim.Deterministic)
	if dok && ook && ownerDet.V > 0 {
		util := cfg.MeanUtilization()
		p, err := feasim.ParamsFromUtilization(taskDet.V*float64(w), w, ownerDet.V, util)
		if err == nil {
			if ana, err := feasim.Analyze(p); err == nil {
				fmt.Printf("  analytic (optimistic) E_j = %.3f, E_t = %.3f\n", ana.EJob, ana.ETask)
				fmt.Printf("  simulated/analytic job-time ratio: %.4f\n", res.JobTime.Mean/ana.EJob)
			}
		}
	}
	return nil
}
