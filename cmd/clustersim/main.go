// Command clustersim runs the general (DES-based) simulator with arbitrary
// owner and task distributions — the paper's stated future work on
// higher-variance service demands and load imbalance.
//
// Distributions use the spec syntax of feasim.ParseDist:
//
//	det:10  exp:10  erlang:4,10  hyper:0.1,55,5  pareto:6,2.5  geom:0.01  unif:5,15
//
// Usage:
//
//	clustersim -w 12 -task det:100 -think geom:0.0034 -owner det:10 -samples 20000
//	clustersim -w 12 -task unif:50,150 -think exp:300 -owner hyper:0.9,5,55
//
// The tool prints the measured job-time CI and, when the workload matches
// the paper's model shape (deterministic tasks and owner bursts), the
// analytic prediction for comparison.
package main

import (
	"flag"
	"fmt"
	"os"

	"feasim"
)

func main() {
	w := flag.Int("w", 12, "number of workstations")
	taskSpec := flag.String("task", "det:100", "per-task demand distribution")
	thinkSpec := flag.String("think", "geom:0.01", "owner think-time distribution (wall clock)")
	ownerSpec := flag.String("owner", "det:10", "owner burst demand distribution")
	samples := flag.Int("samples", 20000, "measured job executions")
	warmup := flag.Int("warmup", 50, "discarded warmup jobs")
	seed := flag.Uint64("seed", 1993, "random seed")
	flag.Parse()

	if err := run(*w, *taskSpec, *thinkSpec, *ownerSpec, *samples, *warmup, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "clustersim:", err)
		os.Exit(1)
	}
}

func run(w int, taskSpec, thinkSpec, ownerSpec string, samples, warmup int, seed uint64) error {
	task, err := feasim.ParseDist(taskSpec)
	if err != nil {
		return err
	}
	think, err := feasim.ParseDist(thinkSpec)
	if err != nil {
		return err
	}
	owner, err := feasim.ParseDist(ownerSpec)
	if err != nil {
		return err
	}

	cfg := feasim.GeneralConfig{
		TaskDemand: task,
		Seed:       seed,
		WarmupJobs: warmup,
	}
	for i := 0; i < w; i++ {
		cfg.Stations = append(cfg.Stations, feasim.StationWorkload{
			OwnerThink:  think,
			OwnerDemand: owner,
		})
	}
	g, err := feasim.NewGeneralSimulator(cfg)
	if err != nil {
		return err
	}

	pr := feasim.Protocol{
		Batches:    20,
		BatchSize:  samples / 20,
		Level:      0.90,
		MaxSamples: int64(4 * samples),
	}
	if pr.BatchSize < 1 {
		pr.BatchSize = 1
	}
	res, err := feasim.RunGeneral(g, pr)
	if err != nil {
		return err
	}

	fmt.Printf("general simulator: W=%d task=%s think=%s owner=%s\n", w, task, think, owner)
	fmt.Printf("  configured owner utilization %.4f, observed %.4f\n",
		cfg.MeanUtilization(), res.ObservedUtil)
	fmt.Printf("  samples %d\n", res.Samples)
	fmt.Printf("  E[job time]  %v\n", res.JobTime)
	fmt.Printf("  E[task time] %v\n", res.MeanTask)

	// When the workload is the paper's shape, show the analytic bound.
	taskDet, dok := task.(feasim.Deterministic)
	ownerDet, ook := owner.(feasim.Deterministic)
	if dok && ook && ownerDet.V > 0 {
		util := cfg.MeanUtilization()
		p, err := feasim.ParamsFromUtilization(taskDet.V*float64(w), w, ownerDet.V, util)
		if err == nil {
			if ana, err := feasim.Analyze(p); err == nil {
				fmt.Printf("  analytic (optimistic) E_j = %.3f, E_t = %.3f\n", ana.EJob, ana.ETask)
				fmt.Printf("  simulated/analytic job-time ratio: %.4f\n", res.JobTime.Mean/ana.EJob)
			}
		}
	}
	return nil
}
