package main

import (
	"os"
	"testing"
)

func TestRunSimulation(t *testing.T) {
	old := os.Stdout
	null, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = null
	defer func() { os.Stdout = old; null.Close() }()

	// Paper-shaped workload: analytic comparison branch included.
	if err := run(4, "det:100", "geom:0.0034", "det:10", 400, 10, 1); err != nil {
		t.Fatal(err)
	}
	// High-variance workload: no analytic branch.
	if err := run(2, "unif:50,150", "exp:300", "hyper:0.9,5,55", 200, 5, 2); err != nil {
		t.Fatal(err)
	}
	// Bad distribution specs.
	for _, args := range [][3]string{
		{"wat:1", "geom:0.01", "det:10"},
		{"det:100", "wat:1", "det:10"},
		{"det:100", "geom:0.01", "wat:1"},
	} {
		if err := run(2, args[0], args[1], args[2], 100, 5, 3); err == nil {
			t.Errorf("bad spec %v should error", args)
		}
	}
}

func TestRunWorkday(t *testing.T) {
	old := os.Stdout
	null, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = null
	defer func() { os.Stdout = old; null.Close() }()

	// The workday experiment goes through the timeline query kind; both the
	// analytic walker and the DES replay answer it.
	if err := runWorkday(4, "det:100", "det:10", "morning:480:0.15,night:960:0.02", 40, 1); err != nil {
		t.Fatal(err)
	}
	// Unnamed phases parse too.
	if err := runWorkday(2, "det:50", "det:10", "100:0.1", 20, 2); err != nil {
		t.Fatal(err)
	}
	// Non-deterministic workloads have no timeline form.
	if err := runWorkday(2, "exp:100", "det:10", "100:0.1", 20, 3); err == nil {
		t.Error("exp task with -workday should error")
	}
	if err := runWorkday(2, "det:100", "exp:10", "100:0.1", 20, 3); err == nil {
		t.Error("exp owner with -workday should error")
	}
	// Malformed phase specs and invalid schedules fail loudly.
	for _, spec := range []string{"", "x", "a:1:2:3", "nan:0.1", "100:wat", "100:1.5", "-5:0.1"} {
		if err := runWorkday(2, "det:100", "det:10", spec, 20, 4); err == nil {
			t.Errorf("workday spec %q should error", spec)
		}
	}
}

func TestParseWorkday(t *testing.T) {
	phases, err := parseWorkday("morning:480:0.15, 960:0.02")
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 2 || phases[0].Name != "morning" || phases[1].Name != "" ||
		phases[1].Duration != 960 || phases[1].Util != 0.02 {
		t.Fatalf("parsed %+v", phases)
	}
}
