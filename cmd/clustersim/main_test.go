package main

import (
	"os"
	"testing"
)

func TestRunSimulation(t *testing.T) {
	old := os.Stdout
	null, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = null
	defer func() { os.Stdout = old; null.Close() }()

	// Paper-shaped workload: analytic comparison branch included.
	if err := run(4, "det:100", "geom:0.0034", "det:10", 400, 10, 1); err != nil {
		t.Fatal(err)
	}
	// High-variance workload: no analytic branch.
	if err := run(2, "unif:50,150", "exp:300", "hyper:0.9,5,55", 200, 5, 2); err != nil {
		t.Fatal(err)
	}
	// Bad distribution specs.
	for _, args := range [][3]string{
		{"wat:1", "geom:0.01", "det:10"},
		{"det:100", "wat:1", "det:10"},
		{"det:100", "geom:0.01", "wat:1"},
	} {
		if err := run(2, args[0], args[1], args[2], 100, 5, 3); err == nil {
			t.Errorf("bad spec %v should error", args)
		}
	}
}
