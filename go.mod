module feasim

go 1.22
