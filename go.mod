module feasim

go 1.24
