# Development targets. CI runs build/test/race/serve-smoke/cluster-smoke/
# chaos-smoke/frontier-smoke blocking and bench/fuzz non-blocking.

.PHONY: all build test race vet fmt bench fuzz serve-smoke cluster-smoke chaos-smoke frontier-smoke

all: build test

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

vet:
	go vet ./...

fmt:
	gofmt -l -w .

# bench runs the core performance suite in-process — including the typed
# query path (threshold bisections/s), the adaptive frontier refinement
# (cells/s and probes saved vs dense), the served-query pair (the HTTP
# service cold vs cache-hit), the served batch (64 mixed envelopes per
# request), the cluster forwarded-hit path (one peer hop on top of a warm
# home cache) and the answer-cache contention pairs — and records the result
# as BENCH_10.json (schema feasim-bench/1), the repository's performance
# trajectory artifact. When the previous artifact is present, benchdiff
# reports per-benchmark deltas and flags >20% ns/op regressions.
bench:
	go run ./cmd/feasim bench -out BENCH_10.json
	@if [ -f BENCH_9.json ]; then go run ./cmd/feasim benchdiff BENCH_9.json BENCH_10.json; fi

# fuzz gives each JSON-envelope fuzz target a short budget; CI runs this
# non-blocking. Failures drop reproducers under testdata/fuzz/.
fuzz:
	go test ./internal/solve -run '^$$' -fuzz '^FuzzQueryUnmarshal$$' -fuzztime 30s
	go test ./internal/solve -run '^$$' -fuzz '^FuzzScenarioUnmarshal$$' -fuzztime 30s
	go test ./internal/solve -run '^$$' -fuzz '^FuzzQuerySweepUnmarshal$$' -fuzztime 30s
	go test ./internal/solve -run '^$$' -fuzz '^FuzzFrontierUnmarshal$$' -fuzztime 30s

# serve-smoke starts the HTTP query service, fires one query per kind from
# the checked-in goldens, and diffs the answers against the CLI `feasim
# query` output — proof the HTTP and CLI paths stay in lockstep.
serve-smoke:
	go test ./cmd/feasim -run '^TestServeSmoke$$' -count=1 -v

# cluster-smoke launches three real `feasim serve` processes on loopback in
# cluster mode, posts the same envelope to each, and checks via /v1/cluster
# that the fleet executed exactly one solve (two nodes forwarded to the key's
# home). This is the out-of-process counterpart to the in-process httptest
# cluster suite.
cluster-smoke:
	go test ./cmd/feasim -run '^TestClusterSmoke$$' -count=1 -v

# chaos-smoke launches three real `feasim serve` processes, one with every
# outbound peer request failing (-chaos "seed=7;error=1"), and checks that
# the faulty node's breakers open (visible in `feasim cluster`) while every
# node keeps answering every query correctly — the resilience tier's
# end-to-end gate.
chaos-smoke:
	go test ./cmd/feasim -run '^TestChaosSmoke$$' -count=1 -v

# frontier-smoke streams the checked-in frontier spec through the HTTP
# service (POST /v1/sweep?mode=frontier) and requires the NDJSON cell stream
# and terminal stats to match `feasim sweep -frontier -json` line for line —
# proof the streamed and local adaptive refinements stay in lockstep.
frontier-smoke:
	go test ./cmd/feasim -run '^TestFrontierSmoke$$' -count=1 -v
