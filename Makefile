# Development targets. CI runs build/test blocking and bench non-blocking.

.PHONY: all build test vet fmt bench

all: build test

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

fmt:
	gofmt -l -w .

# bench runs the core performance suite in-process and records the result
# as BENCH_2.json (schema feasim-bench/1), the repository's performance
# trajectory artifact.
bench:
	go run ./cmd/feasim bench -out BENCH_2.json
