# Development targets. CI runs build/test/race blocking and bench
# non-blocking.

.PHONY: all build test race vet fmt bench

all: build test

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

vet:
	go vet ./...

fmt:
	gofmt -l -w .

# bench runs the core performance suite in-process — including the typed
# query path (threshold bisections/s) — and records the result as
# BENCH_3.json (schema feasim-bench/1), the repository's performance
# trajectory artifact.
bench:
	go run ./cmd/feasim bench -out BENCH_3.json
