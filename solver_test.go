package feasim_test

import (
	"context"
	"errors"
	"math"
	"testing"

	"feasim"
)

// parityProtocol keeps the parity tests fast while leaving the confidence
// intervals wide enough to be meaningful.
var parityProtocol = feasim.Protocol{Batches: 10, BatchSize: 100, Level: 0.90}

// parity slack reuses the sim.ValidateAgainstAnalysis convention: widen the
// simulated interval by (1+slack) to absorb expected CI misses at the 90%
// level (and, for the DES backend, the general model's fidelity gap — it
// drops the exact model's one-unit-progress guarantee, so it runs a shade
// slower by design).
const paritySlack = 0.5

// TestCrossBackendParity solves the same Scenario with all three solvers
// and requires the simulators' weighted-efficiency confidence intervals to
// cover the analytic answer, at the paper's baseline J=1000, O=10 and the
// task-ratio-10 operating point its conclusions highlight.
func TestCrossBackendParity(t *testing.T) {
	ctx := context.Background()
	for _, util := range []float64{0.05, 0.1} {
		s := feasim.Scenario{Name: "parity", J: 1000, W: 10, O: 10, Util: util, Seed: 1993}
		ana, err := feasim.NewAnalyticSolver().Solve(ctx, s)
		if err != nil {
			t.Fatal(err)
		}
		solvers := []feasim.Solver{
			feasim.NewExactSimSolver(parityProtocol),
			feasim.NewDESSolver(parityProtocol, 20),
		}
		for _, sv := range solvers {
			rep, err := sv.Solve(ctx, s)
			if err != nil {
				t.Fatalf("util %g, %s: %v", util, sv.Name(), err)
			}
			if rep.Backend != sv.Name() {
				t.Errorf("report backend %q, solver %q", rep.Backend, sv.Name())
			}
			ci := rep.WeffCI.Widen(paritySlack)
			if !ci.Contains(ana.WeightedEfficiency) {
				t.Errorf("util %g, %s: weighted efficiency CI [%.4f, %.4f] misses analytic %.4f",
					util, sv.Name(), ci.Lo, ci.Hi, ana.WeightedEfficiency)
			}
			jb := rep.EJobCI.Widen(paritySlack)
			if !jb.Contains(ana.EJob) {
				t.Errorf("util %g, %s: E[job] CI [%.4f, %.4f] misses analytic %.4f",
					util, sv.Name(), jb.Lo, jb.Hi, ana.EJob)
			}
			if rel := math.Abs(rep.EJob-ana.EJob) / ana.EJob; rel > 0.02 {
				t.Errorf("util %g, %s: E[job] point estimate off by %.2f%%", util, sv.Name(), rel*100)
			}
			if rep.Samples == 0 {
				t.Errorf("%s: simulation report should carry a sample count", sv.Name())
			}
		}
	}
}

// TestSolverVerdictMatchesAssess checks the analytic backend's feasibility
// block against the flat Assess API it wraps.
func TestSolverVerdictMatchesAssess(t *testing.T) {
	s := feasim.Scenario{J: 600, W: 60, O: 10, Util: 0.2, TargetEff: 0.8}
	rep, err := feasim.NewAnalyticSolver().Solve(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	p, err := feasim.ParamsFromUtilization(600, 60, 10, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	v, err := feasim.Assess(p, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Feasible == nil || *rep.Feasible != v.Feasible {
		t.Errorf("verdict %v, Assess says %v", rep.Feasible, v.Feasible)
	}
	if rep.MinRatio != v.MinRatio || rep.MinJobDemand != v.MinJobDemand {
		t.Errorf("prescription (%d, %g), Assess says (%d, %g)",
			rep.MinRatio, rep.MinJobDemand, v.MinRatio, v.MinJobDemand)
	}
}

// TestSolverDeadlineMatchesDistribution checks the deadline probability
// against the flat DeadlineProb API.
func TestSolverDeadlineMatchesDistribution(t *testing.T) {
	s := feasim.Scenario{J: 1000, W: 10, O: 10, Util: 0.1, Deadline: 150}
	rep, err := feasim.NewAnalyticSolver().Solve(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	p, err := feasim.ParamsFromUtilization(1000, 10, 10, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := feasim.DeadlineProb(p, 150)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DeadlineProb == nil || *rep.DeadlineProb != want {
		t.Errorf("deadline prob %v, DeadlineProb says %v", rep.DeadlineProb, want)
	}
}

// TestSolversHonorCancelledContext requires every backend to fail fast with
// the context error when solving under an already-cancelled context.
func TestSolversHonorCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := feasim.Scenario{J: 1000, W: 10, O: 10, Util: 0.1, Seed: 1}
	for _, sv := range []feasim.Solver{
		feasim.NewAnalyticSolver(),
		feasim.NewExactSimSolver(feasim.Protocol{}),
		feasim.NewDESSolver(feasim.Protocol{}, 0),
	} {
		if _, err := sv.Solve(ctx, s); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: want context.Canceled, got %v", sv.Name(), err)
		}
	}
}

// TestDESSolvesExplicitStations exercises the one description form only the
// DES backend understands, and requires the discrete-model backends to
// refuse it rather than silently approximate.
func TestDESSolvesExplicitStations(t *testing.T) {
	s := feasim.Scenario{
		Name: "het",
		Stations: []feasim.StationSpec{
			{OwnerThink: "exp:190", OwnerDemand: "det:10", Count: 4},
			{OwnerThink: "exp:90", OwnerDemand: "det:10", Count: 4},
		},
		TaskDemand: "det:100",
		Seed:       3,
	}
	pr := feasim.Protocol{Batches: 5, BatchSize: 50, Level: 0.90}
	rep, err := feasim.NewDESSolver(pr, 5).Solve(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.W != 8 {
		t.Errorf("station count %d, want 8", rep.W)
	}
	// Mean configured utilization: (0.05 + 0.1) / 2.
	if math.Abs(rep.U-0.075) > 1e-9 {
		t.Errorf("mean utilization %v, want 0.075", rep.U)
	}
	if rep.EJob <= 100 {
		t.Errorf("owner interference should stretch the job past its dedicated time, got %v", rep.EJob)
	}
	if _, err := feasim.NewAnalyticSolver().Solve(context.Background(), s); err == nil {
		t.Error("analytic backend should refuse explicit-station scenarios")
	}
	if _, err := feasim.NewExactSimSolver(pr).Solve(context.Background(), s); err == nil {
		t.Error("exact backend should refuse explicit-station scenarios")
	}
}

// TestOwnerVarianceOnlyMovesDES: OwnerCV2 is invisible to the discrete
// model (it sees only the mean) but slows the DES backend — the variance
// ablation the sweep engine exploits for deduplication.
func TestOwnerVarianceOnlyMovesDES(t *testing.T) {
	ctx := context.Background()
	base := feasim.Scenario{J: 1200, W: 12, O: 10, Util: 0.1, Seed: 11}
	noisy := base
	noisy.OwnerCV2 = 16
	a1, err := feasim.NewAnalyticSolver().Solve(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := feasim.NewAnalyticSolver().Solve(ctx, noisy)
	if err != nil {
		t.Fatal(err)
	}
	if a1.EJob != a2.EJob {
		t.Errorf("analytic backend should ignore OwnerCV2: %v vs %v", a1.EJob, a2.EJob)
	}
	pr := feasim.Protocol{Batches: 5, BatchSize: 100, Level: 0.90}
	d1, err := feasim.NewDESSolver(pr, 10).Solve(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := feasim.NewDESSolver(pr, 10).Solve(ctx, noisy)
	if err != nil {
		t.Fatal(err)
	}
	if d2.EJob <= d1.EJob {
		t.Errorf("high-variance owner demands should slow the DES job: CV2=1 %.2f, CV2=16 %.2f",
			d1.EJob, d2.EJob)
	}
}

func TestSolverByName(t *testing.T) {
	for _, name := range feasim.Backends() {
		sv, err := feasim.SolverByName(name, feasim.Protocol{})
		if err != nil {
			t.Fatal(err)
		}
		if sv.Name() != name {
			t.Errorf("solver %q resolved as %q", name, sv.Name())
		}
	}
	if _, err := feasim.SolverByName("csim", feasim.Protocol{}); err == nil {
		t.Error("unknown backend should error")
	}
}
