package feasim

import "feasim/internal/solve"

// ---- Typed Query/Answer API ----
//
// Every question the paper poses is a typed Query, serialized through one
// JSON envelope {"kind": "...", ...} and answered by any capable backend via
// Solver.Answer. The kinds: "report" (the full Section 3 metrics — PR 1's
// Solve), "threshold" (the conclusions-table minimum task ratio),
// "partition" (cluster right-sizing for a fixed job), "distribution"
// (completion-time quantiles and deadline tails), "scaled" (memory-bounded
// scaleup), and "timeline" (feasibility over a workday schedule or recorded
// trace as an epoch series). Solver.Capabilities lists what a backend
// answers; unsupported pairs fail with an error matching ErrUnsupported.

// Query is one typed question to a Solver; concrete types are ReportQuery,
// ThresholdQuery, PartitionQuery, DistributionQuery, ScaledQuery and
// TimelineQuery.
type Query = solve.Query

// Answer is a Solver's reply; the concrete type matches the query kind.
type Answer = solve.Answer

// Query kinds, the values of the JSON envelope's "kind" field.
const (
	KindReport       = solve.KindReport
	KindThreshold    = solve.KindThreshold
	KindPartition    = solve.KindPartition
	KindDistribution = solve.KindDistribution
	KindScaled       = solve.KindScaled
	KindTimeline     = solve.KindTimeline
)

// QueryKinds lists every query kind in canonical order.
func QueryKinds() []string { return solve.QueryKinds() }

// ErrUnsupported matches (via errors.Is) the error a backend returns for a
// query kind outside its Capabilities.
var ErrUnsupported = solve.ErrUnsupported

// UnsupportedError names the (backend, kind) pair that was refused.
type UnsupportedError = solve.UnsupportedError

// ReportQuery asks for the full Section 3 report at one operating point.
// Answered by every backend.
type ReportQuery = solve.ReportQuery

// ThresholdQuery asks for the minimum task ratio reaching a target weighted
// efficiency — exactly from the analytic backend, empirically (a monotone
// bisection over simulated probe points) from the simulation backends.
type ThresholdQuery = solve.ThresholdQuery

// PartitionQuery right-sizes a cluster for a fixed job: the largest W still
// meeting the target weighted efficiency. Analytic exactly, DES empirically.
type PartitionQuery = solve.PartitionQuery

// DistributionQuery asks for completion-time quantiles and deadline
// probabilities — exact from the analytic backend, empirical from the
// simulators' batch samples.
type DistributionQuery = solve.DistributionQuery

// ScaledQuery asks for the memory-bounded scaleup curve (Section 3.2).
// Analytic only.
type ScaledQuery = solve.ScaledQuery

// TimelineQuery asks how feasibility evolves over the scenario's workday
// schedule or recorded trace — the quasi-static approximation from the
// analytic backend, phased-station replay from the DES backend.
type TimelineQuery = solve.TimelineQuery

// DefaultTimelineSamples is the DES replication count per timeline epoch
// when TimelineQuery.Samples is zero.
const DefaultTimelineSamples = solve.DefaultTimelineSamples

// Answers, one per query kind.
type (
	// ReportAnswer wraps the full Report.
	ReportAnswer = solve.ReportAnswer
	// ThresholdAnswer carries the minimum ratio, the job demand realizing
	// it, and the weighted efficiency (with CI, for simulation backends)
	// achieved at the boundary.
	ThresholdAnswer = solve.ThresholdAnswer
	// PartitionAnswer carries the chosen W and the full report at that size.
	PartitionAnswer = solve.PartitionAnswer
	// DistributionAnswer carries moments, quantiles and deadline coverage.
	DistributionAnswer = solve.DistributionAnswer
	// ScaledAnswer carries the scaleup curve.
	ScaledAnswer = solve.ScaledAnswer
	// QuantileValue is one completion-time quantile of a DistributionAnswer.
	QuantileValue = solve.QuantileValue
	// DeadlineValue is one deadline probability of a DistributionAnswer.
	DeadlineValue = solve.DeadlineValue
	// ScaledResultPoint is one system size of a ScaledAnswer curve.
	ScaledResultPoint = solve.ScaledResultPoint
	// TimelineAnswer carries the feasibility epoch series over the workday.
	TimelineAnswer = solve.TimelineAnswer
	// TimelineEpoch is one launch offset of a TimelineAnswer.
	TimelineEpoch = solve.TimelineEpoch
)

// ParseQuery decodes a query from its JSON envelope, rejecting unknown
// kinds and unknown fields.
func ParseQuery(data []byte) (Query, error) { return solve.ParseQuery(data) }

// LoadQuery reads and decodes a query envelope JSON file.
func LoadQuery(path string) (Query, error) { return solve.LoadQuery(path) }

// MarshalQuery serializes a query into its JSON envelope.
func MarshalQuery(q Query) ([]byte, error) { return solve.MarshalQuery(q) }
